package server

import (
	"bufio"
	"fmt"
	"strings"
	"testing"
	"time"

	"boundschema/internal/repl"
	"boundschema/internal/vfs"
	"boundschema/internal/workload"
)

// End-to-end replication tests: a real primary with a replication
// listener, real replicas dialing it over TCP, and byte-identity of the
// served instances as the convergence criterion. Every server runs on
// its own in-memory vfs.Fault (with no script it is just a fast FS), so
// a test can also pull the power on a replica's disk mid-catch-up.

// newReplServer builds a journaled whitepages server on its own FS. The
// caller owns Close.
func newReplServer(t *testing.T, fs vfs.FS, groupCommit bool, rotateBytes int64) *Server {
	t.Helper()
	sch := workload.WhitePagesSchema()
	srv, err := New(sch, "whitepages", workload.WhitePagesInstance(sch))
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFS(fs)
	srv.SetGroupCommit(groupCommit)
	srv.SetJournalRotation(rotateBytes)
	if err := srv.OpenJournal(crashJournalPath); err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return srv
}

// startPrimary builds a primary and its replication listener.
func startPrimary(t *testing.T, mode repl.Mode) (*Server, string) {
	t.Helper()
	srv := newReplServer(t, vfs.NewFault(), true, 0)
	srv.SetReplicationMode(mode)
	addr, err := srv.ListenRepl("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenRepl: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

// startReplica builds a replica on fs streaming from primaryAddr.
func startReplica(t *testing.T, fs vfs.FS, primaryAddr string) *Server {
	t.Helper()
	srv := newReplServer(t, fs, true, 0)
	if err := srv.StartReplica(primaryAddr); err != nil {
		t.Fatalf("StartReplica: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func commitSeqOf(srv *Server) uint64 {
	srv.mu.RLock()
	defer srv.mu.RUnlock()
	return srv.commitSeq
}

// waitSeq blocks until the replica has applied through want.
func waitSeq(t *testing.T, r *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		local, _ := r.ReplicaSeqs()
		if local >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at seq %d, want %d", local, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitReplicas blocks until the primary's hub has n live subscribers.
// Semi-sync tests need this: committing before the replica's handshake
// reaches the hub legitimately degrades the gate to async.
func waitReplicas(t *testing.T, primary *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for primary.ReplStatus().Replicas < n {
		if time.Now().After(deadline) {
			t.Fatalf("primary never saw %d replicas: %+v", n, primary.ReplStatus())
		}
		time.Sleep(time.Millisecond)
	}
}

// serverLDIF renders the served instance — the byte-identity oracle.
func serverLDIF(t *testing.T, srv *Server) string {
	t.Helper()
	var sb strings.Builder
	w := bufio.NewWriter(&sb)
	if err := srv.Snapshot(w); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	w.Flush()
	return sb.String()
}

// TestReplicationCluster is the tentpole acceptance scenario: one
// primary, two replicas, over a thousand commits. The first replica
// subscribes from sequence zero; the second joins mid-stream and
// catches up from the journal tail. Both must end byte-identical to
// the primary's encoded directory.
func TestReplicationCluster(t *testing.T) {
	const nCommits = 1020
	primary, addr := startPrimary(t, repl.Async)
	r1 := startReplica(t, vfs.NewFault(), addr)

	txns := crashWorkload(nCommits)
	for i, ct := range txns[:nCommits/2] {
		if rep, err := primary.CommitTx(ct.build()); err != nil || !rep.Legal() {
			t.Fatalf("commit %d: err=%v report=%v", i, err, rep)
		}
	}
	// Late joiner: the journal (rotation off) covers every sequence, so
	// this replica catches up from the verbatim tail, not a snapshot.
	r2 := startReplica(t, vfs.NewFault(), addr)
	for i, ct := range txns[nCommits/2:] {
		if rep, err := primary.CommitTx(ct.build()); err != nil || !rep.Legal() {
			t.Fatalf("commit %d: err=%v report=%v", nCommits/2+i, err, rep)
		}
	}
	want := commitSeqOf(primary)
	if want < nCommits {
		t.Fatalf("primary commitSeq = %d, want >= %d", want, nCommits)
	}
	waitSeq(t, r1, want)
	waitSeq(t, r2, want)

	pb := serverLDIF(t, primary)
	for i, r := range []*Server{r1, r2} {
		if got := serverLDIF(t, r); got != pb {
			t.Errorf("replica %d diverged: %d bytes vs primary's %d", i+1, len(got), len(pb))
		}
		if r.Role() != RoleReplica {
			t.Errorf("replica %d role = %v", i+1, r.Role())
		}
		local, pseq := r.ReplicaSeqs()
		if local != want || pseq < want {
			t.Errorf("replica %d seqs: local=%d primary_seen=%d, want %d", i+1, local, pseq, want)
		}
	}
	st := primary.ReplStatus()
	if st.Replicas != 2 || st.LastShipped != want {
		t.Errorf("hub status = %+v, want 2 replicas shipped through %d", st, want)
	}
}

// TestReplicaSnapshotBootstrap: when the primary has rotated its journal
// past the replica's position, catch-up must fall back to a full
// snapshot — and streaming continues seamlessly after the bootstrap.
func TestReplicaSnapshotBootstrap(t *testing.T) {
	pf := vfs.NewFault()
	primary := newReplServer(t, pf, false, 1500) // per-txn commits, aggressive rotation
	t.Cleanup(func() { primary.Close() })
	addr, err := primary.ListenRepl("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenRepl: %v", err)
	}
	txns := crashWorkload(80)
	for _, ct := range txns[:60] {
		if _, err := primary.CommitTx(ct.build()); err != nil {
			t.Fatal(err)
		}
	}
	if n := primary.metrics.JournalRotations.Load(); n == 0 {
		t.Fatalf("no rotation after 60 commits at a 1500-byte threshold")
	}

	rf := vfs.NewFault()
	r := startReplica(t, rf, addr)
	waitSeq(t, r, commitSeqOf(primary))

	// The replica must have bootstrapped via snapshot: its own snapshot
	// sidecar now records the primary's sequence.
	snap, err := rf.ReadFile(crashJournalPath + ".snapshot")
	if err != nil {
		t.Fatalf("replica has no snapshot sidecar after bootstrap: %v", err)
	}
	if !strings.HasPrefix(string(snap), snapshotSeqPrefix) {
		t.Errorf("replica snapshot lacks the %q header", snapshotSeqPrefix)
	}

	// Streaming continues after the bootstrap.
	for _, ct := range txns[60:] {
		if _, err := primary.CommitTx(ct.build()); err != nil {
			t.Fatal(err)
		}
	}
	waitSeq(t, r, commitSeqOf(primary))
	if got, want := serverLDIF(t, r), serverLDIF(t, primary); got != want {
		t.Errorf("replica diverged after snapshot bootstrap + streaming")
	}
}

// TestSemiSyncDurability: with semi-sync on, COMMIT's OK must mean the
// record survives the replica losing power — pull the plug on the
// replica's FS after the workload and recover a fresh server from it.
func TestSemiSyncDurability(t *testing.T) {
	primary, addr := startPrimary(t, repl.SemiSync)
	rf := vfs.NewFault()
	r := startReplica(t, rf, addr)
	waitReplicas(t, primary, 1)

	txns := crashWorkload(50)
	for i, ct := range txns {
		if _, err := primary.CommitTx(ct.build()); err != nil {
			t.Fatalf("semi-sync commit %d: %v", i, err)
		}
	}
	want := commitSeqOf(primary)
	st := primary.ReplStatus()
	if st.Degraded {
		t.Fatalf("semi-sync degraded with a live replica: %+v", st)
	}
	if st.AckedSeq < want {
		t.Fatalf("acked_seq=%d below the last OK'd commit %d", st.AckedSeq, want)
	}

	// Power loss on the replica, then recovery through the ordinary
	// journal pipeline: every OK'd commit must be there.
	r.Close()
	rf.Recover()
	r2 := newReplServer(t, rf, true, 0)
	defer r2.Close()
	if got := commitSeqOf(r2); got != want {
		t.Errorf("recovered replica at seq %d, want %d", got, want)
	}
	r2.mu.RLock()
	for _, ct := range txns {
		for _, dn := range ct.dns {
			if r2.dir.ByDN(dn) == nil {
				t.Errorf("semi-sync durability: %s OK'd on the primary but lost by the replica crash", dn)
			}
		}
	}
	r2.mu.RUnlock()
}

// TestSemiSyncDegradeAndReenable: with no replica the hub degrades to
// async (commits still succeed), and re-arms once a replica catches up.
func TestSemiSyncDegradeAndReenable(t *testing.T) {
	primary, addr := startPrimary(t, repl.SemiSync)
	txns := crashWorkload(20)
	if _, err := primary.CommitTx(txns[0].build()); err != nil {
		t.Fatalf("commit with no replica must degrade, not fail: %v", err)
	}
	if st := primary.ReplStatus(); !st.Degraded {
		t.Fatalf("hub not degraded after a replica-less semi-sync commit: %+v", st)
	}

	r := startReplica(t, vfs.NewFault(), addr)
	waitSeq(t, r, commitSeqOf(primary))
	for _, ct := range txns[1:] {
		if _, err := primary.CommitTx(ct.build()); err != nil {
			t.Fatal(err)
		}
	}
	waitSeq(t, r, commitSeqOf(primary))
	deadline := time.Now().Add(5 * time.Second)
	for primary.ReplStatus().Degraded {
		if time.Now().After(deadline) {
			t.Fatalf("semi-sync never re-armed after the replica caught up: %+v", primary.ReplStatus())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaReadsAndWriteRedirect: a replica serves read traffic and
// reports its role, but BEGIN is refused with a redirect to the primary.
func TestReplicaReadsAndWriteRedirect(t *testing.T) {
	primary, addr := startPrimary(t, repl.Async)
	txns := crashWorkload(10)
	for _, ct := range txns {
		if _, err := primary.CommitTx(ct.build()); err != nil {
			t.Fatal(err)
		}
	}
	r := startReplica(t, vfs.NewFault(), addr)
	waitSeq(t, r, commitSeqOf(primary))

	caddr, err := r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dialClient(t, caddr)

	body := c.expectOK("SEARCH (objectClass=person)")
	if len(body) == 0 {
		t.Errorf("replica SEARCH returned nothing")
	}
	body = c.expectOK("STAT")
	if len(body) == 0 || body[0] != "role: replica" {
		t.Errorf("replica STAT body = %v, want role: replica first", body)
	}
	body = c.expectOK("METRICS")
	if got := metricLine(t, body, "role:"); got != "role: replica" {
		t.Errorf("replica METRICS role = %q", got)
	}
	rep := metricLine(t, body, "replica:")
	if !strings.Contains(rep, "lag=0") {
		t.Errorf("caught-up replica reports %q, want lag=0", rep)
	}

	c.send("BEGIN")
	if _, term := c.until(); !strings.Contains(term, "redirect primary="+addr) {
		t.Errorf("BEGIN on replica = %q, want a redirect to %s", term, addr)
	}
	if _, err := r.CommitTx(txns[0].build()); err == nil ||
		!strings.Contains(err.Error(), "redirect primary=") {
		t.Errorf("CommitTx on replica = %v, want redirect error", err)
	}

	// The primary's surfaces report the other side of the relationship.
	paddr, err := primary.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pc := dialClient(t, paddr)
	body = pc.expectOK("STAT")
	if len(body) == 0 || body[0] != "role: primary" {
		t.Errorf("primary STAT body = %v, want role: primary first", body)
	}
	body = pc.expectOK("METRICS")
	if got := metricLine(t, body, "replication:"); !strings.Contains(got, "replicas=1") {
		t.Errorf("primary METRICS replication = %q, want replicas=1", got)
	}
}

// TestPromote: a caught-up replica is promoted over the protocol — the
// reply carries the final journal verify — and then accepts writes.
func TestPromote(t *testing.T) {
	primary, addr := startPrimary(t, repl.Async)
	txns := crashWorkload(30)
	for _, ct := range txns[:20] {
		if _, err := primary.CommitTx(ct.build()); err != nil {
			t.Fatal(err)
		}
	}
	r := startReplica(t, vfs.NewFault(), addr)
	waitSeq(t, r, commitSeqOf(primary))

	caddr, err := r.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dialClient(t, caddr)
	body := c.expectOK("PROMOTE")
	joined := strings.Join(body, "\n")
	if !strings.Contains(joined, "verify: clean") || !strings.Contains(joined, "promoted: now primary") {
		t.Errorf("PROMOTE body missing verify/promotion lines:\n%s", joined)
	}
	if r.Role() != RolePrimary {
		t.Errorf("role after PROMOTE = %v", r.Role())
	}

	// Writes flow on the promoted node, through the protocol and on.
	c.expectOK("BEGIN")
	c.expectOK(
		"ADD uid=failover,ou=attLabs,o=att",
		"objectClass: person",
		"objectClass: top",
		"name: failover",
		"COMMIT",
	)
	if got := commitSeqOf(r); got != 21 {
		t.Errorf("promoted node commitSeq = %d, want 21", got)
	}

	// A second PROMOTE (now a primary) is refused.
	c.send("PROMOTE")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Errorf("PROMOTE on a primary = %q, want ERR", term)
	}
}

// TestPromoteRefusedWhileDegraded: promotion must never hand writes to
// a replica that already knows it cannot trust its state.
func TestPromoteRefusedWhileDegraded(t *testing.T) {
	primary, addr := startPrimary(t, repl.Async)
	if _, err := primary.CommitTx(crashWorkload(1)[0].build()); err != nil {
		t.Fatal(err)
	}
	r := startReplica(t, vfs.NewFault(), addr)
	waitSeq(t, r, commitSeqOf(primary))
	r.mu.Lock()
	r.degradeReplica("test: simulated divergence")
	r.mu.Unlock()
	if _, err := r.Promote(); err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Errorf("Promote on a degraded replica = %v, want refusal", err)
	}
}

// TestReplicaCrashDuringCatchup is satellite 3: pull the power on the
// replica's file system at every mutating FS operation during catch-up
// — both the journal-tail and the snapshot-bootstrap path — then
// recover through the ordinary journal pipeline and assert the state is
// legal, transaction-atomic, and gap-free; finally resume streaming and
// require byte-identical convergence with the still-running primary.
func TestReplicaCrashDuringCatchup(t *testing.T) {
	const nCommits = 30
	scenarios := []struct {
		name        string
		rotateBytes int64 // primary rotation; >0 forces the snapshot path
	}{
		// Rotation off: the primary's journal covers seq 1.., so a fresh
		// replica catches up from the verbatim tail (one append+fsync per
		// segment — the widest sweep).
		{"journal-tail", 0},
		// Aggressive rotation: the journal no longer reaches back to the
		// replica's HELLO, so catch-up is a snapshot bootstrap (tmp write,
		// sync, rename, dir sync, journal truncate).
		{"snapshot-bootstrap", 1500},
	}
	txns := crashWorkload(nCommits)
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			primary := newReplServer(t, vfs.NewFault(), false, sc.rotateBytes)
			t.Cleanup(func() { primary.Close() })
			addr, err := primary.ListenRepl("127.0.0.1:0")
			if err != nil {
				t.Fatalf("ListenRepl: %v", err)
			}
			for _, ct := range txns {
				if _, err := primary.CommitTx(ct.build()); err != nil {
					t.Fatal(err)
				}
			}
			pseq := commitSeqOf(primary)
			pbytes := serverLDIF(t, primary)

			// Fault-free counting pass: the replica's FS op stream is
			// deterministic (one streaming loop, a static primary), so its
			// op count bounds the crash sweep.
			probe := vfs.NewFault()
			r := startReplica(t, probe, addr)
			waitSeq(t, r, pseq)
			r.Close()
			total := probe.OpCount()
			if got := serverLDIF(t, r); got != pbytes {
				t.Fatalf("fault-free replica not byte-identical to primary")
			}

			step := 1
			if cap := crashMatrixCap(); cap > 0 && total > cap {
				step = (total + cap - 1) / cap
			}
			t.Logf("%s: %d mutating replica FS ops, crashing at every %d", sc.name, total, step)
			for op := 1; op <= total; op += step {
				op := op
				t.Run(fmt.Sprintf("op%03d", op), func(t *testing.T) {
					fault := vfs.NewFault()
					fault.SetScript(vfs.FaultPoint{Op: op, Kind: vfs.FaultCrash})
					r := startReplica(t, fault, addr)
					deadline := time.Now().Add(15 * time.Second)
					for {
						local, _ := r.ReplicaSeqs()
						if local >= pseq || fault.Crashed() {
							break
						}
						if time.Now().After(deadline) {
							t.Fatalf("replica neither caught up nor crashed at op %d", op)
						}
						time.Sleep(time.Millisecond)
					}
					r.Close()
					fault.Recover()

					// Restart through the recovery pipeline: a pure crash
					// must never be refused, and the recovered state must be
					// legal, atomic, and not ahead of the primary.
					r2 := newReplServer(t, fault, false, 0)
					t.Cleanup(func() { r2.Close() })
					r2.mu.RLock()
					for _, ct := range txns {
						present := 0
						for _, dn := range ct.dns {
							if r2.dir.ByDN(dn) != nil {
								present++
							}
						}
						if present != 0 && present != len(ct.dns) {
							t.Errorf("atomicity: %d of %d entries of a replicated transaction present: %v",
								present, len(ct.dns), ct.dns)
						}
					}
					if rep := r2.checker.Check(r2.dir); !rep.Legal() {
						t.Errorf("legality: recovered replica illegal:\n%s", rep)
					}
					local := r2.commitSeq
					r2.mu.RUnlock()
					if local > pseq {
						t.Errorf("recovered replica at seq %d, ahead of primary %d", local, pseq)
					}

					// Resume streaming: the crash must heal completely.
					if err := r2.StartReplica(addr); err != nil {
						t.Fatalf("resume after recovery: %v", err)
					}
					waitSeq(t, r2, pseq)
					if got := serverLDIF(t, r2); got != pbytes {
						t.Errorf("replica not byte-identical after crash at op %d + recovery + resume", op)
					}
					r2.Close()
				})
			}
		})
	}
}

package server

import (
	"net"
	"testing"
	"time"

	"boundschema/internal/repl"
	"boundschema/internal/vfs"
)

// TestJitterBackoff pins the reconnect jitter contract: equal-jitter
// keeps every delay inside [d/2, d] (so backoff still bounds retry
// rate) while spreading replicas across the window (so a fleet that
// lost the same primary at the same instant does not reconnect in
// lockstep).
func TestJitterBackoff(t *testing.T) {
	const d = 400 * time.Millisecond
	seen := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		j := repl.JitterBackoff(d)
		if j < d/2 || j > d {
			t.Fatalf("JitterBackoff(%v) = %v, outside [%v, %v]", d, j, d/2, d)
		}
		seen[j] = true
	}
	if len(seen) < 10 {
		t.Errorf("200 samples landed on only %d distinct delays; no spread", len(seen))
	}
	if j := repl.JitterBackoff(0); j != 0 {
		t.Errorf("jitterBackoff(0) = %v, want 0", j)
	}
	if j := repl.JitterBackoff(1); j != 1 {
		t.Errorf("jitterBackoff(1) = %v, want the degenerate input back", j)
	}
}

// TestReconnectStorm: several replicas all start dialing an address
// nobody listens on yet — the synchronized-loss shape jitter exists
// for — and every one of them must find the primary once it appears,
// settle into streaming, and converge.
func TestReconnectStorm(t *testing.T) {
	const nReplicas = 4
	// Reserve an address so the replicas can dial before the primary
	// listens. Re-binding a just-released port can race another process;
	// skip rather than flake if the window is lost.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	replicas := make([]*Server, nReplicas)
	for i := range replicas {
		r := newReplServer(t, vfs.NewFault(), true, 0)
		t.Cleanup(func() { r.Close() })
		if err := r.StartReplica(addr); err != nil {
			t.Fatalf("StartReplica: %v", err)
		}
		replicas[i] = r
	}
	// Let every replica fail at least one dial and enter jittered
	// backoff before the primary exists.
	time.Sleep(250 * time.Millisecond)

	p := newReplServer(t, vfs.NewFault(), true, 0)
	t.Cleanup(func() { p.Close() })
	p.SetReplicationMode(repl.Async)
	if _, err := p.ListenRepl(addr); err != nil {
		t.Skipf("reserved address %s re-bind lost: %v", addr, err)
	}
	waitReplicas(t, p, nReplicas)

	txns := crashWorkload(5)
	for _, ct := range txns {
		if _, err := p.CommitTx(ct.build()); err != nil {
			t.Fatal(err)
		}
	}
	want := commitSeqOf(p)
	pb := serverLDIF(t, p)
	for i, r := range replicas {
		waitSeq(t, r, want)
		if got := serverLDIF(t, r); got != pb {
			t.Errorf("replica %d diverged after the reconnect storm", i)
		}
	}
}

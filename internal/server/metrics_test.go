package server

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"boundschema/internal/core"
	"boundschema/internal/repl"
)

// metricLine finds the first METRICS body line with the given prefix.
func metricLine(t *testing.T, body []string, prefix string) string {
	t.Helper()
	for _, l := range body {
		if strings.HasPrefix(l, prefix) {
			return l
		}
	}
	t.Fatalf("no %q line in METRICS body:\n%s", prefix, strings.Join(body, "\n"))
	return ""
}

// TestServerMetricsCommand drives a scripted session and asserts METRICS
// reports non-zero command counters, checker timings, transaction
// outcomes, and violation kinds — the acceptance scenario for the
// observability surface.
func TestServerMetricsCommand(t *testing.T) {
	_, c := startServer(t)

	c.expectOK("SEARCH (objectClass=person)")
	c.expectOK("SEARCH (objectClass=orgUnit)")
	c.expectOK("GET ou=attLabs,o=att")

	// One legal commit.
	c.expectOK("BEGIN")
	c.expectOK(
		"ADD uid=metr,ou=attLabs,o=att",
		"objectClass: person",
		"objectClass: top",
		"name: metr",
		"COMMIT",
	)

	// One illegal commit: an empty orgUnit breaches its lower bounds, so
	// COMMIT replies ILLEGAL with violations.
	c.expectOK("BEGIN")
	c.send(
		"ADD ou=empty,ou=attLabs,o=att",
		"objectClass: orgUnit",
		"objectClass: orgGroup",
		"objectClass: top",
		"COMMIT",
	)
	if _, term := c.until(); term != "ILLEGAL" {
		t.Fatalf("empty-orgUnit commit replied %q, want ILLEGAL", term)
	}

	c.expectOK("CHECK")
	c.send("BOGUS")
	if _, term := c.until(); !strings.HasPrefix(term, "ERR ") {
		t.Fatalf("unknown command replied %q", term)
	}

	body := c.expectOK("METRICS")

	// Command counters: exactly what the script sent.
	for line, frag := range map[string]string{
		"command SEARCH:":  "count=2 errors=0",
		"command GET:":     "count=1 errors=0",
		"command BEGIN:":   "count=2",
		"command COMMIT:":  "count=2",
		"command CHECK:":   "count=1",
		"command UNKNOWN:": "count=1 errors=1",
	} {
		if got := metricLine(t, body, line); !strings.Contains(got, frag) {
			t.Errorf("%s = %q, want containing %q", line, got, frag)
		}
	}
	// Checker timings: the two COMMITs and the CHECK each ran the checker
	// (the startup legality check is deliberately uncounted).
	seq := metricLine(t, body, "checker sequential:")
	par := metricLine(t, body, "checker parallel:")
	if strings.Contains(seq, "count=0") && strings.Contains(par, "count=0") {
		t.Errorf("no checker timings recorded:\n%s\n%s", seq, par)
	}
	tx := metricLine(t, body, "transactions:")
	for _, frag := range []string{"committed=1", "illegal=1", "active=0"} {
		if !strings.Contains(tx, frag) {
			t.Errorf("transactions line %q missing %q", tx, frag)
		}
	}
	// The illegal DELETE surfaced at least one violation kind.
	var sawViolation bool
	for _, l := range body {
		if strings.HasPrefix(l, "violations ") {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Errorf("no violation counters after an ILLEGAL commit:\n%s",
			strings.Join(body, "\n"))
	}
	metricLine(t, body, "uptime_ms:")
	metricLine(t, body, "connections:")
	if got := metricLine(t, body, "journal:"); got != "journal: off" {
		t.Errorf("journal line = %q on a journal-less server", got)
	}
}

// TestMetricsSnapshotJSON: the expvar shape must marshal and carry the
// same counters the METRICS command reports.
func TestMetricsSnapshotJSON(t *testing.T) {
	srv, c := startServer(t)
	c.expectOK("SEARCH (objectClass=person)")
	c.expectOK("CHECK")

	raw, err := json.Marshal(srv.MetricsSnapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	cmds, ok := snap["commands"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot has no commands map: %s", raw)
	}
	search, ok := cmds["SEARCH"].(map[string]any)
	if !ok || search["count"].(float64) != 1 {
		t.Errorf("snapshot SEARCH stats = %v", cmds["SEARCH"])
	}
	if _, ok := snap["checker"]; !ok {
		t.Errorf("snapshot missing checker section: %s", raw)
	}
	if _, ok := snap["journal"]; ok {
		t.Errorf("journal section present on a journal-less server")
	}
}

// TestHistogramQuantile: observations land in power-of-two buckets and
// the quantile upper bounds are ordered and honest.
func TestHistogramQuantile(t *testing.T) {
	var h histogram
	if h.quantile(0.5) != 0 || h.avgUS() != 0 {
		t.Fatalf("empty histogram not zero")
	}
	for _, us := range []int64{0, 3, 3, 3, 100, 900} {
		h.observe(time.Duration(us) * time.Microsecond)
	}
	if n := h.count.Load(); n != 6 {
		t.Fatalf("count = %d", n)
	}
	if mx := h.maxUS.Load(); mx != 900 {
		t.Fatalf("max = %d", mx)
	}
	p50 := h.quantile(0.50)
	p99 := h.quantile(0.99)
	if p50 < 3 || p50 > 4 {
		t.Errorf("p50 = %d, want upper bound of the [2,4) bucket", p50)
	}
	if p99 != 900 {
		t.Errorf("p99 = %d, want clamped to max 900", p99)
	}
	if p50 > p99 {
		t.Errorf("quantiles not ordered: p50=%d p99=%d", p50, p99)
	}
	if avg := h.avgUS(); avg != (0+3+3+3+100+900)/6 {
		t.Errorf("avg = %d", avg)
	}
}

// TestMetricsLineOrder pins the METRICS body ordering — it is part of
// the observability surface, and scraping scripts rely on it. Every
// optional section is switched on so the golden sequence covers the
// whole surface, including the replication lines.
func TestMetricsLineOrder(t *testing.T) {
	m := newMetrics()
	m.noteBatch(3)
	m.noteRecovery(&RecoveryReport{RecordsScanned: 2, Legal: true, Clean: true})
	m.observeCommand("SEARCH", time.Millisecond, false)
	m.observeCommand("COMMIT", time.Millisecond, false)
	m.SearchIndexed.Add(2)
	m.SearchScanned.Add(1)
	m.violations[0].Add(1)

	m.FencingEvents.Add(1)

	hub := repl.HubStatus{Mode: repl.SemiSync, Replicas: 2, LastShipped: 9, AckedSeq: 9, Epoch: 3}
	rs := replStatus{role: "read-only degraded", epoch: 3, hub: &hub, replica: true,
		primarySeq: 9, localSeq: 8, applied: 4}
	got := m.lines(true, "stuck", rs)

	want := []string{
		"uptime_ms",
		"connections",
		"sessions",
		"transactions",
		"search",
		"journal",
		"group-commit",
		"recovery",
		"read_only",
		"role",
		"epoch",
		"fencing",
		"replication",
		"replica",
		"checker sequential",
		"checker parallel",
		"command COMMIT",
		"command SEARCH",
		"violations " + core.ViolationKind(0).String(),
	}
	if len(got) != len(want) {
		t.Fatalf("METRICS rendered %d lines, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i, l := range got {
		key, _, ok := strings.Cut(l, ":")
		if !ok || key != want[i] {
			t.Errorf("line %d = %q, want key %q", i, l, want[i])
		}
	}

	// The replication lines carry exact, scrapable key=value content.
	if l := got[4]; l != "search: indexed=2 scanned=1" {
		t.Errorf("search line = %q", l)
	}
	if l := got[9]; l != "role: read-only degraded" {
		t.Errorf("role line = %q", l)
	}
	if l := got[10]; l != "epoch: 3" {
		t.Errorf("epoch line = %q", l)
	}
	if l := got[11]; l != "fencing: events=1 epoch_rejects=0" {
		t.Errorf("fencing line = %q", l)
	}
	if l := got[12]; l != "replication: mode=semisync replicas=2 last_shipped=9 acked_seq=9 semisync_degraded=0 epoch=3" {
		t.Errorf("replication line = %q", l)
	}
	if l := got[13]; l != "replica: primary_seq=9 applied_seq=8 lag=1 applied=4" {
		t.Errorf("replica line = %q", l)
	}

	// A plain journal-less primary still states its role, in the same slot
	// relative to its neighbours.
	plain := newMetrics().lines(false, "", replStatus{role: "primary"})
	idx := -1
	for i, l := range plain {
		if l == "role: primary" {
			idx = i
		}
	}
	if idx == -1 {
		t.Fatalf("no role line on a plain server:\n%s", strings.Join(plain, "\n"))
	}
	if !strings.HasPrefix(plain[idx-1], "journal:") || !strings.HasPrefix(plain[idx+1], "epoch:") {
		t.Errorf("role line neighbours = %q / %q", plain[idx-1], plain[idx+1])
	}
}

// BenchmarkObserveCommand measures the metrics tax on the per-command
// hot path (EXPERIMENTS.md, "Metrics overhead").
func BenchmarkObserveCommand(b *testing.B) {
	m := newMetrics()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.observeCommand("SEARCH", 37*time.Microsecond, false)
		}
	})
}

package filter

import (
	"testing"

	"boundschema/internal/dirtree"
)

// FuzzParse checks that the filter parser never panics and that every
// successfully parsed filter round-trips through its String form to an
// equivalent filter (same rendering, same match behavior on a probe
// entry).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"(objectClass=person)",
		"(mail=*)",
		"(mail=a*b*c)",
		"(age>=40)",
		"(age<=40)",
		"(cn~=jo hn)",
		"(&(a=1)(|(b=2)(!(c=3))))",
		"(a=\\28escaped\\29)",
		"((((",
		"(a=b))))(",
		"(&)",
		"(|)",
		"(a=*)(b=*)",
		"(a>=)",
		"(=x)",
		"(a=\\zz)",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	d := dirtree.New(nil)
	probe, _ := d.AddRoot("uid=probe", "person", "top")
	probe.AddValue("mail", dirtree.String("probe@example.org"))
	probe.AddValue("age", dirtree.String("40"))

	f.Fuzz(func(t *testing.T, src string) {
		flt, err := Parse(src)
		if err != nil {
			return
		}
		text := flt.String()
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("rendered filter does not reparse: %q -> %q: %v", src, text, err)
		}
		if again.String() != text {
			t.Fatalf("rendering unstable: %q -> %q -> %q", src, text, again.String())
		}
		if flt.Matches(probe) != again.Matches(probe) {
			t.Fatalf("round trip changed semantics for %q", src)
		}
	})
}

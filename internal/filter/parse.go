package filter

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses an RFC 2254-style filter string. The outermost parentheses
// are required, as in "(objectClass=person)".
func Parse(src string) (Filter, error) {
	p := &parser{src: src}
	f, err := p.parseFilter()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errorf("trailing input %q", p.src[p.pos:])
	}
	return f, nil
}

// MustParse is Parse that panics on error, for filters written as program
// literals.
func MustParse(src string) Filter {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	src string
	pos int
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("filter: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *parser) expect(c byte) error {
	if p.pos >= len(p.src) || p.src[p.pos] != c {
		return p.errorf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *parser) parseFilter() (Filter, error) {
	p.skipSpace()
	if err := p.expect('('); err != nil {
		return nil, err
	}
	if p.pos >= len(p.src) {
		return nil, p.errorf("unexpected end of filter")
	}
	var f Filter
	var err error
	switch p.src[p.pos] {
	case '&':
		p.pos++
		subs, serr := p.parseFilterList()
		f, err = And(subs), serr
	case '|':
		p.pos++
		subs, serr := p.parseFilterList()
		f, err = Or(subs), serr
	case '!':
		p.pos++
		sub, serr := p.parseFilter()
		f, err = Not{Sub: sub}, serr
	default:
		f, err = p.parseItem()
	}
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseFilterList() ([]Filter, error) {
	var subs []Filter
	for {
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '(' {
			return subs, nil
		}
		sub, err := p.parseFilter()
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
	}
}

// parseItem parses attr OP value up to (but not consuming) the closing ')'.
func (p *parser) parseItem() (Filter, error) {
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune("=<>~()", rune(p.src[p.pos])) {
		p.pos++
	}
	attr := strings.TrimSpace(p.src[start:p.pos])
	if attr == "" {
		return nil, p.errorf("missing attribute name")
	}
	if p.pos >= len(p.src) {
		return nil, p.errorf("unexpected end of filter")
	}
	var op CompareOp
	switch p.src[p.pos] {
	case '=':
		op = OpEqual
		p.pos++
	case '>':
		p.pos++
		if err := p.expect('='); err != nil {
			return nil, err
		}
		op = OpGE
	case '<':
		p.pos++
		if err := p.expect('='); err != nil {
			return nil, err
		}
		op = OpLE
	case '~':
		p.pos++
		if err := p.expect('='); err != nil {
			return nil, err
		}
		op = OpApprox
	default:
		return nil, p.errorf("expected comparison operator after %q", attr)
	}

	// Scan the raw value up to the closing ')', tracking '*' separators.
	var parts []string
	var cur strings.Builder
	sawStar := false
	for p.pos < len(p.src) && p.src[p.pos] != ')' {
		c := p.src[p.pos]
		switch c {
		case '*':
			parts = append(parts, cur.String())
			cur.Reset()
			sawStar = true
			p.pos++
		case '\\':
			if p.pos+2 >= len(p.src) {
				return nil, p.errorf("truncated escape")
			}
			n, err := strconv.ParseUint(p.src[p.pos+1:p.pos+3], 16, 8)
			if err != nil {
				return nil, p.errorf("bad escape %q", p.src[p.pos:p.pos+3])
			}
			cur.WriteByte(byte(n))
			p.pos += 3
		case '(':
			return nil, p.errorf("unescaped '(' in value")
		default:
			cur.WriteByte(c)
			p.pos++
		}
	}
	parts = append(parts, cur.String())

	if !sawStar {
		return Compare{Attr: attr, Op: op, Value: parts[0]}, nil
	}
	if op != OpEqual {
		return nil, p.errorf("wildcards are only allowed with '='")
	}
	if len(parts) == 2 && parts[0] == "" && parts[1] == "" {
		return Compare{Attr: attr, Op: OpPresent}, nil
	}
	sub := Substring{
		Attr:    attr,
		Initial: parts[0],
		Final:   parts[len(parts)-1],
	}
	if len(parts) > 2 {
		for _, mid := range parts[1 : len(parts)-1] {
			if mid == "" {
				continue // "ab**cd" collapses to "ab*cd"
			}
			sub.Any = append(sub.Any, mid)
		}
	}
	return sub, nil
}

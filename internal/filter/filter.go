// Package filter implements an LDAP search filter language (an RFC 2254 /
// RFC 1960 subset) over directory entries: the atomic selection conditions
// of the hierarchical query language of Jagadish et al. [9] that the
// structure-schema legality tests of Section 3.2 reduce to.
//
// Supported forms:
//
//	(attr=value)       equality (value "*" alone means presence)
//	(attr=ab*cd*ef)    substring match with leading/trailing/inner parts
//	(attr>=value)      ordering, using the attribute's value order
//	(attr<=value)
//	(attr~=value)      approximate match (case- and whitespace-insensitive)
//	(&(f1)(f2)...)     conjunction
//	(|(f1)(f2)...)     disjunction
//	(!(f))             negation
package filter

import (
	"fmt"
	"strings"

	"boundschema/internal/dirtree"
)

// Filter is a parsed search filter. Implementations are immutable and safe
// for concurrent use.
type Filter interface {
	// Matches reports whether the entry satisfies the filter.
	Matches(e *dirtree.Entry) bool
	// String renders the filter in its parenthesized source form.
	String() string
}

// And is the conjunction of its sub-filters; an empty And matches
// everything (the LDAP "and" identity).
type And []Filter

// Matches implements Filter.
func (f And) Matches(e *dirtree.Entry) bool {
	for _, sub := range f {
		if !sub.Matches(e) {
			return false
		}
	}
	return true
}

func (f And) String() string { return compose('&', f) }

// Or is the disjunction of its sub-filters; an empty Or matches nothing.
type Or []Filter

// Matches implements Filter.
func (f Or) Matches(e *dirtree.Entry) bool {
	for _, sub := range f {
		if sub.Matches(e) {
			return true
		}
	}
	return false
}

func (f Or) String() string { return compose('|', f) }

func compose(op byte, subs []Filter) string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteByte(op)
	for _, s := range subs {
		b.WriteString(s.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Not negates its sub-filter.
type Not struct{ Sub Filter }

// Matches implements Filter.
func (f Not) Matches(e *dirtree.Entry) bool { return !f.Sub.Matches(e) }

func (f Not) String() string { return "(!" + f.Sub.String() + ")" }

// CompareOp distinguishes the atomic comparison forms.
type CompareOp int

// Atomic comparison operators.
const (
	OpEqual   CompareOp = iota // =
	OpGE                       // >=
	OpLE                       // <=
	OpApprox                   // ~=
	OpPresent                  // =* (presence)
)

func (op CompareOp) String() string {
	switch op {
	case OpEqual:
		return "="
	case OpGE:
		return ">="
	case OpLE:
		return "<="
	case OpApprox:
		return "~="
	case OpPresent:
		return "=*"
	}
	return "?"
}

// Compare is an atomic comparison (attr op value). For OpPresent the Value
// field is unused.
type Compare struct {
	Attr  string
	Op    CompareOp
	Value string
}

// Matches implements Filter.
func (f Compare) Matches(e *dirtree.Entry) bool {
	if f.Op == OpPresent {
		return e.HasAttr(f.Attr)
	}
	// objectClass enjoys a fast path: Definition 2.1 ties its values to
	// the class set, and it is by far the most common atom (Figure 4
	// translates every structure-schema element to objectClass atoms).
	if f.Op == OpEqual && f.Attr == dirtree.AttrObjectClass {
		return e.HasClass(f.Value)
	}
	for _, v := range e.Attr(f.Attr) {
		if f.compareValue(e, v) {
			return true
		}
	}
	return false
}

func (f Compare) compareValue(e *dirtree.Entry, v dirtree.Value) bool {
	switch f.Op {
	case OpEqual:
		// Parse the query value through the registry, like the range ops:
		// for a TypeInt attribute (port=080) must match the entry that
		// (port>=80)&(port<=80) matches. Text that does not parse as the
		// attribute's type falls back to a raw string comparison.
		want, err := parseAs(e, f.Attr, f.Value)
		if err != nil {
			return v.String() == f.Value
		}
		return v.Compare(want) == 0
	case OpApprox:
		return normalize(v.String()) == normalize(f.Value)
	case OpGE, OpLE:
		want, err := parseAs(e, f.Attr, f.Value)
		if err != nil {
			return false
		}
		c := v.Compare(want)
		if f.Op == OpGE {
			return c >= 0
		}
		return c <= 0
	}
	return false
}

func parseAs(e *dirtree.Entry, attr, text string) (dirtree.Value, error) {
	var reg *dirtree.Registry
	if d := e.Directory(); d != nil {
		reg = d.Registry()
	}
	return dirtree.ParseValue(reg.Type(attr), text)
}

func normalize(s string) string {
	return strings.Join(strings.Fields(strings.ToLower(s)), " ")
}

// String implements Filter.
func (f Compare) String() string {
	if f.Op == OpPresent {
		return "(" + f.Attr + "=*)"
	}
	return "(" + f.Attr + f.Op.String() + escape(f.Value) + ")"
}

// Substring is an atomic substring match (attr=initial*any*...*final).
// Empty Initial/Final mean the pattern starts/ends with '*'.
type Substring struct {
	Attr    string
	Initial string
	Any     []string
	Final   string
}

// Matches implements Filter.
func (f Substring) Matches(e *dirtree.Entry) bool {
	for _, v := range e.Attr(f.Attr) {
		if f.matchText(v.String()) {
			return true
		}
	}
	return false
}

func (f Substring) matchText(s string) bool {
	if f.Initial != "" {
		if !strings.HasPrefix(s, f.Initial) {
			return false
		}
		s = s[len(f.Initial):]
	}
	for _, part := range f.Any {
		i := strings.Index(s, part)
		if i < 0 {
			return false
		}
		s = s[i+len(part):]
	}
	return strings.HasSuffix(s, f.Final)
}

// String implements Filter.
func (f Substring) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(f.Attr)
	b.WriteByte('=')
	b.WriteString(escape(f.Initial))
	b.WriteByte('*')
	for _, part := range f.Any {
		b.WriteString(escape(part))
		b.WriteByte('*')
	}
	b.WriteString(escape(f.Final))
	b.WriteByte(')')
	return b.String()
}

// ClassIs returns the ubiquitous (objectClass=c) filter used throughout
// the Figure 4 translation.
func ClassIs(c string) Filter {
	return Compare{Attr: dirtree.AttrObjectClass, Op: OpEqual, Value: c}
}

// escape protects the special characters ( ) * \ in literal values, per
// RFC 2254 section 4.
func escape(s string) string {
	if !strings.ContainsAny(s, `()*\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', ')', '*', '\\':
			b.WriteByte('\\')
			b.WriteString(fmt.Sprintf("%02x", s[i]))
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

package filter

import (
	"testing"
	"testing/quick"

	"boundschema/internal/dirtree"
)

func person(t *testing.T) *dirtree.Entry {
	t.Helper()
	reg := dirtree.NewRegistry()
	reg.Declare("age", dirtree.TypeInt)
	reg.Declare("active", dirtree.TypeBool)
	d := dirtree.New(reg)
	e, err := d.AddRoot("uid=laks", "researcher", "person", "top")
	if err != nil {
		t.Fatal(err)
	}
	e.AddValue("name", dirtree.String("Laks Lakshmanan"))
	e.AddValue("mail", dirtree.String("laks@cs.concordia.ca"))
	e.AddValue("mail", dirtree.String("laks@cse.iitb.ernet.in"))
	e.AddValue("age", dirtree.Int(40))
	e.AddValue("active", dirtree.Bool(true))
	return e
}

func TestMatchBasics(t *testing.T) {
	e := person(t)
	cases := []struct {
		src  string
		want bool
	}{
		{"(objectClass=person)", true},
		{"(objectClass=orgUnit)", false},
		{"(name=Laks Lakshmanan)", true},
		{"(name=laks lakshmanan)", false}, // equality is case-sensitive
		{"(name~=LAKS   lakshmanan)", true},
		{"(mail=laks@cs.concordia.ca)", true},
		{"(mail=*)", true},
		{"(fax=*)", false},
		{"(mail=laks@*)", true},
		{"(mail=*iitb*)", true},
		{"(mail=*concordia.ca)", true},
		{"(mail=laks@*ernet*in)", true},
		{"(mail=zzz*)", false},
		{"(age>=40)", true},
		{"(age>=41)", false},
		{"(age<=40)", true},
		{"(age<=39)", false},
		{"(age>=notanumber)", false},
		{"(&(objectClass=person)(mail=*))", true},
		{"(&(objectClass=person)(fax=*))", false},
		{"(|(objectClass=orgUnit)(objectClass=person))", true},
		{"(|(objectClass=orgUnit)(objectClass=router))", false},
		{"(!(objectClass=orgUnit))", true},
		{"(!(objectClass=person))", false},
		{"(&)", true},
		{"(|)", false},
		{"(&(|(mail=*iitb*)(mail=*acm*))(!(objectClass=orgUnit)))", true},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := f.Matches(e); got != c.want {
			t.Errorf("%q matches = %v, want %v", c.src, got, c.want)
		}
	}
}

// TestTypedEquality pins the satellite fix: equality parses the query
// value through the registry exactly like >=/<= do, so typed attributes
// match semantically ((port=080) ≡ (port>=80)&(port<=80)) while string
// attributes — IP addresses among them — keep exact text semantics.
func TestTypedEquality(t *testing.T) {
	reg := dirtree.NewRegistry()
	reg.Declare("bandwidth", dirtree.TypeInt)
	reg.Declare("active", dirtree.TypeBool)
	d := dirtree.New(reg)
	e, err := d.AddRoot("cn=host1", "host")
	if err != nil {
		t.Fatal(err)
	}
	e.AddValue("bandwidth", dirtree.Int(80))
	e.AddValue("ipAddress", dirtree.String("10.0.0.5"))
	e.AddValue("active", dirtree.Bool(true))

	cases := []struct {
		src  string
		want bool
	}{
		{"(bandwidth=80)", true},
		{"(bandwidth=080)", true},     // was false: raw string comparison
		{"(bandwidth= 80)", true},     // ParseValue trims, like the range ops
		{"(bandwidth=81)", false},
		{"(bandwidth=notanumber)", false}, // parse error → string fallback
		{"(&(bandwidth>=80)(bandwidth<=80))", true}, // must agree with =080
		{"(ipAddress=10.0.0.5)", true},
		{"(ipAddress=10.0.0.05)", false}, // strings stay exact-text
		{"(active=TRUE)", true},
		{"(active=1)", true}, // boolean synonym now parses like >=/<=
		{"(active=FALSE)", false},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := f.Matches(e); got != c.want {
			t.Errorf("%q matches = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"objectClass=person",
		"(objectClass=person",
		"(=value)",
		"(attr)",
		"(attr>5)",
		"(a=b)(c=d)",
		"(!(a=b)(c=d))",
		"(a=b\\zz)",
		"(a=b\\2)",
		"(a=(b)",
		"(mail>=a*b)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	e := person(t)
	e.AddValue("cn", dirtree.String("weird (value) with * and \\"))
	f := Compare{Attr: "cn", Op: OpEqual, Value: "weird (value) with * and \\"}
	src := f.String()
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if !back.Matches(e) {
		t.Errorf("escaped filter %q does not match", src)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"(objectClass=person)",
		"(mail=*)",
		"(mail=laks@*)",
		"(mail=*iitb*ernet*)",
		"(age>=40)",
		"(age<=40)",
		"(name~=laks)",
		"(&(objectClass=person)(mail=*))",
		"(|(a=1)(b=2)(c=3))",
		"(!(a=1))",
	}
	for _, src := range srcs {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		again, err := Parse(f.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, f.String(), err)
		}
		if again.String() != f.String() {
			t.Errorf("round trip unstable: %q -> %q -> %q", src, f.String(), again.String())
		}
	}
}

func TestClassIs(t *testing.T) {
	e := person(t)
	if !ClassIs("person").Matches(e) {
		t.Errorf("ClassIs(person) should match")
	}
	if ClassIs("orgUnit").Matches(e) {
		t.Errorf("ClassIs(orgUnit) should not match")
	}
	if got := ClassIs("person").String(); got != "(objectClass=person)" {
		t.Errorf("ClassIs rendering = %q", got)
	}
}

func TestCollapsedDoubleStar(t *testing.T) {
	e := person(t)
	f, err := Parse("(mail=laks@**ca)")
	if err != nil {
		t.Fatal(err)
	}
	if !f.Matches(e) {
		t.Errorf("double star pattern should behave like single star")
	}
}

// Property: De Morgan — !(a&b) behaves as (!a)|(!b) on arbitrary class
// combinations.
func TestQuickDeMorgan(t *testing.T) {
	reg := dirtree.NewRegistry()
	d := dirtree.New(reg)
	classes := []string{"a", "b"}
	f := func(hasA, hasB bool) bool {
		cs := []string{"top"}
		if hasA {
			cs = append(cs, classes[0])
		}
		if hasB {
			cs = append(cs, classes[1])
		}
		e, err := d.AddRoot("x="+itoa(len(d.Entries())), cs...)
		if err != nil {
			return false
		}
		lhs := Not{Sub: And{ClassIs("a"), ClassIs("b")}}
		rhs := Or{Not{Sub: ClassIs("a")}, Not{Sub: ClassIs("b")}}
		return lhs.Matches(e) == rhs.Matches(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	digits := "0123456789"
	if i == 0 {
		return "0"
	}
	s := ""
	for i > 0 {
		s = string(digits[i%10]) + s
		i /= 10
	}
	return s
}

package repl

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Target is the replica-side state machine the streaming client drives.
// internal/server implements it over the live Server: Bootstrap
// installs a full snapshot, Apply admits one verified segment through
// the incremental legality checks and makes it locally durable, and
// LastSeq reports the durable high-water mark the handshake announces.
type Target interface {
	// LastSeq returns the highest sequence number held durably.
	LastSeq() uint64
	// Bootstrap replaces the local state with a snapshot (LDIF bytes,
	// including the "# snapshot-seq" header) compacted through seq, and
	// makes it durable. Called at most once per connection.
	Bootstrap(seq uint64, snapshot []byte) error
	// Apply admits one CRC-verified segment: decode, check sequence
	// continuity, apply under the incremental legality tests, journal
	// durably. Returning nil acknowledges the segment (a duplicate the
	// target already holds is a nil too); an error ends the session.
	Apply(seg Segment) error
	// ObservePrimarySeq reports the primary's durable sequence number
	// learned from the stream — the replica's lag gauge input.
	ObservePrimarySeq(seq uint64)
}

// maxSnapshotBytes bounds the bootstrap blob a client will accept.
const maxSnapshotBytes = 1 << 30

// Run performs the replica side of the replication protocol over an
// established connection: HELLO with the local high-water mark, apply
// the snapshot or tail the primary chooses, then stream segments,
// acking each after the target makes it durable. It blocks until the
// connection closes or either side fails; a clean primary close between
// segments returns io.EOF. The caller owns reconnect policy.
func Run(conn io.ReadWriter, t Target) error {
	br := bufio.NewReaderSize(conn, 64*1024)
	if _, err := io.WriteString(conn, HelloLine(t.LastSeq())); err != nil {
		return fmt.Errorf("repl: hello: %w", err)
	}
	header, err := readLine(br)
	if err != nil {
		return fmt.Errorf("repl: handshake: %w", err)
	}
	switch {
	case strings.HasPrefix(header, errPrefix):
		return fmt.Errorf("repl: primary refused: %s", strings.TrimPrefix(header, errPrefix))
	case strings.HasPrefix(header, snapshotPrefix):
		var seq uint64
		var n int64
		if _, err := fmt.Sscanf(strings.TrimPrefix(header, snapshotPrefix), "seq=%d len=%d", &seq, &n); err != nil {
			return fmt.Errorf("repl: malformed snapshot header %q", header)
		}
		if n < 0 || n > maxSnapshotBytes {
			return fmt.Errorf("repl: snapshot of %d bytes refused", n)
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(br, blob); err != nil {
			return fmt.Errorf("repl: reading snapshot: %w", err)
		}
		if err := t.Bootstrap(seq, blob); err != nil {
			return err
		}
		t.ObservePrimarySeq(seq)
		if _, err := io.WriteString(conn, AckLine(seq)); err != nil {
			return fmt.Errorf("repl: ack: %w", err)
		}
	case strings.HasPrefix(header, tailPrefix):
		// Informational: the tail is verbatim segments, parsed by the
		// same loop as the live stream.
	default:
		return fmt.Errorf("repl: unexpected handshake reply %q", header)
	}
	sr := &SegmentReader{r: br}
	for {
		seg, err := sr.Next(func(line string) {
			if seq, ok := parsePing(line); ok {
				t.ObservePrimarySeq(seq)
			}
		})
		if err != nil {
			return err
		}
		if err := t.Apply(seg); err != nil {
			return err
		}
		t.ObservePrimarySeq(seg.Seq)
		if _, err := io.WriteString(conn, AckLine(seg.Seq)); err != nil {
			return fmt.Errorf("repl: ack: %w", err)
		}
	}
}

package repl

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Target is the replica-side state machine the streaming client drives.
// internal/server implements it over the live Server: Bootstrap
// installs a full snapshot, Apply admits one verified segment through
// the incremental legality checks and makes it locally durable, and
// LastSeq reports the durable high-water mark the handshake announces.
type Target interface {
	// LastSeq returns the highest sequence number held durably.
	LastSeq() uint64
	// Epoch returns the replication epoch the target last adopted.
	// Sessions from a primary announcing a lower epoch are refused.
	Epoch() uint64
	// Bootstrap replaces the local state with a snapshot (LDIF bytes,
	// including the "# snapshot-seq" header) compacted through seq
	// under the primary's epoch, and makes it durable. Called at most
	// once per connection.
	Bootstrap(seq, epoch uint64, snapshot []byte) error
	// Apply admits one CRC-verified segment: decode, check sequence
	// continuity, apply under the incremental legality tests, journal
	// durably. Returning nil acknowledges the segment (a duplicate the
	// target already holds is a nil too); an error ends the session.
	Apply(seg Segment) error
	// ObservePrimarySeq reports the primary's durable sequence number
	// learned from the stream — the replica's lag gauge input.
	ObservePrimarySeq(seq uint64)
}

// maxSnapshotBytes bounds the bootstrap blob a client will accept.
const maxSnapshotBytes = 1 << 30

// ErrStalePrimary marks a session refused because the primary is behind
// the replica's epoch — a fenced-off node that was promoted away from.
// Before returning it the client writes one poison ACK carrying its own
// (higher) epoch so the stale primary learns it must fence itself. The
// caller should keep its local state and wait to be repointed at the
// real primary rather than degrade.
var ErrStalePrimary = errors.New("repl: primary epoch is stale")

// poison writes the fencing ACK that tells a stale primary about the
// replica's higher epoch. Best-effort: the conn may already be broken.
func poison(conn io.Writer, t Target) {
	io.WriteString(conn, AckLine(t.LastSeq(), t.Epoch()))
}

// Run performs the replica side of the replication protocol over an
// established connection: HELLO with the local high-water mark and
// epoch, apply the snapshot or tail the primary chooses, then stream
// segments, acking each after the target makes it durable. It blocks
// until the connection closes or either side fails; a clean primary
// close between segments returns io.EOF. A primary announcing a lower
// epoch than the target's own is refused with ErrStalePrimary (after a
// poison ACK). The caller owns reconnect policy.
func Run(conn io.ReadWriter, t Target) error {
	br := bufio.NewReaderSize(conn, 64*1024)
	if _, err := io.WriteString(conn, HelloLine(t.LastSeq(), t.Epoch())); err != nil {
		return fmt.Errorf("repl: hello: %w", err)
	}
	header, err := readLine(br)
	if err != nil {
		return fmt.Errorf("repl: handshake: %w", err)
	}
	// sessionEpoch is what the primary announced in its header; 0 means
	// a pre-epoch primary, which is accepted (unknown, not stale).
	var sessionEpoch uint64
	switch {
	case strings.HasPrefix(header, errPrefix):
		msg := strings.TrimPrefix(header, errPrefix)
		if strings.Contains(msg, "stale epoch") {
			return fmt.Errorf("%w: %s", ErrStalePrimary, msg)
		}
		return fmt.Errorf("repl: primary refused: %s", msg)
	case strings.HasPrefix(header, snapshotPrefix):
		var seq, epoch uint64
		var n int64
		rest := strings.TrimPrefix(header, snapshotPrefix)
		if cnt, serr := fmt.Sscanf(rest, "seq=%d len=%d epoch=%d", &seq, &n, &epoch); cnt < 2 || (serr != nil && cnt != 2) {
			return fmt.Errorf("repl: malformed snapshot header %q", header)
		}
		if epoch != 0 && epoch < t.Epoch() {
			poison(conn, t)
			return fmt.Errorf("%w: snapshot from epoch %d, local epoch %d", ErrStalePrimary, epoch, t.Epoch())
		}
		sessionEpoch = epoch
		if n < 0 || n > maxSnapshotBytes {
			return fmt.Errorf("repl: snapshot of %d bytes refused", n)
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(br, blob); err != nil {
			return fmt.Errorf("repl: reading snapshot: %w", err)
		}
		if err := t.Bootstrap(seq, epoch, blob); err != nil {
			return err
		}
		t.ObservePrimarySeq(seq)
		if _, err := io.WriteString(conn, AckLine(seq, t.Epoch())); err != nil {
			return fmt.Errorf("repl: ack: %w", err)
		}
	case strings.HasPrefix(header, tailPrefix):
		// The tail is verbatim segments, parsed by the same loop as the
		// live stream; the header's epoch gates the session.
		var from uint64
		var count int64
		var epoch uint64
		rest := strings.TrimPrefix(header, tailPrefix)
		if cnt, serr := fmt.Sscanf(rest, "from=%d count=%d epoch=%d", &from, &count, &epoch); cnt < 2 || (serr != nil && cnt != 2) {
			return fmt.Errorf("repl: malformed tail header %q", header)
		}
		if epoch != 0 && epoch < t.Epoch() {
			poison(conn, t)
			return fmt.Errorf("%w: tail from epoch %d, local epoch %d", ErrStalePrimary, epoch, t.Epoch())
		}
		sessionEpoch = epoch
	default:
		return fmt.Errorf("repl: unexpected handshake reply %q", header)
	}
	sr := &SegmentReader{r: br}
	for {
		seg, err := sr.Next(func(line string) {
			if seq, _, ok := parsePing(line); ok {
				t.ObservePrimarySeq(seq)
			}
		})
		if err != nil {
			return err
		}
		// Refuse shipped segments from a lower epoch instead of applying
		// them: this is the split-brain write path. Epoch 0 records are
		// pre-epoch history and carry no evidence of staleness.
		if seg.Epoch != 0 && seg.Epoch < t.Epoch() {
			poison(conn, t)
			return fmt.Errorf("%w: segment seq=%d from epoch %d, local epoch %d",
				ErrStalePrimary, seg.Seq, seg.Epoch, t.Epoch())
		}
		if sessionEpoch != 0 && seg.Epoch > sessionEpoch {
			return fmt.Errorf("repl: segment seq=%d from epoch %d ahead of session epoch %d",
				seg.Seq, seg.Epoch, sessionEpoch)
		}
		if err := t.Apply(seg); err != nil {
			return err
		}
		t.ObservePrimarySeq(seg.Seq)
		if _, err := io.WriteString(conn, AckLine(seg.Seq, t.Epoch())); err != nil {
			return fmt.Errorf("repl: ack: %w", err)
		}
	}
}

package repl

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func seg(t *testing.T, seq uint64, payload string) Segment {
	t.Helper()
	raw := RawSegment(seq, []byte(payload), 0)
	return Segment{Seq: seq, Payload: []byte(payload), Raw: raw}
}

// epochSeg builds a segment whose marker carries an epoch.
func epochSeg(t *testing.T, seq, epoch uint64, payload string) Segment {
	t.Helper()
	raw := RawSegment(seq, []byte(payload), epoch)
	return Segment{Seq: seq, Epoch: epoch, Payload: []byte(payload), Raw: raw}
}

func TestMarkerRoundTrip(t *testing.T) {
	payload := []byte("dn: uid=a,o=x\nchangetype: add\nobjectClass: person\n\n")
	line := MarkerLine(7, payload, 0)
	if !strings.HasSuffix(line, "\n") {
		t.Fatalf("marker not newline-terminated: %q", line)
	}
	seq, length, crc, epoch, legacy, err := ParseMarker([]byte(strings.TrimRight(line, "\n")))
	if err != nil || legacy {
		t.Fatalf("ParseMarker: seq=%d legacy=%v err=%v", seq, legacy, err)
	}
	if seq != 7 || length != int64(len(payload)) || crc != Checksum(payload) || epoch != 0 {
		t.Fatalf("round trip mismatch: seq=%d len=%d crc=%08x epoch=%d", seq, length, crc, epoch)
	}
	// Epoch-carrying marker round-trips, and epoch 0 renders the exact
	// pre-epoch format.
	line = MarkerLine(7, payload, 3)
	if !strings.Contains(line, " epoch=3") {
		t.Fatalf("epoch missing from marker: %q", line)
	}
	if _, _, _, epoch, _, err := ParseMarker([]byte(strings.TrimRight(line, "\n"))); err != nil || epoch != 3 {
		t.Fatalf("epoch round trip: epoch=%d err=%v", epoch, err)
	}
	if _, _, _, _, legacy, err := ParseMarker([]byte(MarkerPrefix)); err != nil || !legacy {
		t.Fatalf("bare marker should parse as legacy, got legacy=%v err=%v", legacy, err)
	}
	if _, _, _, _, _, err := ParseMarker([]byte(MarkerPrefix + " seq=zap")); err == nil {
		t.Fatal("damaged marker accepted")
	}
	if _, _, _, _, _, err := ParseMarker([]byte(MarkerPrefix + " seq=1 len=2 crc=0000abcd epoch=x")); err == nil {
		t.Fatal("damaged epoch field accepted")
	}
}

func TestHelloAckLines(t *testing.T) {
	n, e, err := ParseHello(strings.TrimRight(HelloLine(42, 3), "\n"))
	if err != nil || n != 42 || e != 3 {
		t.Fatalf("hello round trip: %d %d %v", n, e, err)
	}
	// A pre-epoch HELLO parses with epoch 0.
	n, e, err = ParseHello("REPL HELLO last_seq=42")
	if err != nil || n != 42 || e != 0 {
		t.Fatalf("pre-epoch hello: %d %d %v", n, e, err)
	}
	if _, _, err := ParseHello("REPL HELLO last_seq=x"); err == nil {
		t.Fatal("malformed hello accepted")
	}
	n, e, err = ParseAck(strings.TrimRight(AckLine(9, 2), "\n"))
	if err != nil || n != 9 || e != 2 {
		t.Fatalf("ack round trip: %d %d %v", n, e, err)
	}
	n, e, err = ParseAck("REPL ACK seq=9")
	if err != nil || n != 9 || e != 0 {
		t.Fatalf("pre-epoch ack: %d %d %v", n, e, err)
	}
}

func TestSegmentReaderStream(t *testing.T) {
	var stream bytes.Buffer
	stream.Write(seg(t, 1, "dn: a\nchangetype: delete\n\n").Raw)
	stream.WriteString(PingLine(1, 1))
	stream.Write(seg(t, 2, "dn: b\nchangetype: delete\n\n").Raw)
	stream.Write(epochSeg(t, 3, 2, "dn: c\nchangetype: delete\n\n").Raw)

	sr := NewSegmentReader(&stream)
	var pings []string
	var got []uint64
	for {
		s, err := sr.Next(func(line string) { pings = append(pings, line) })
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !bytes.HasSuffix(s.Raw, []byte(MarkerLine(s.Seq, s.Payload, s.Epoch))) {
			t.Fatalf("segment %d raw bytes not verbatim", s.Seq)
		}
		got = append(got, s.Seq)
		if s.Seq == 3 && s.Epoch != 2 {
			t.Fatalf("segment 3 epoch = %d, want 2", s.Epoch)
		}
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("segments = %v", got)
	}
	if len(pings) != 1 || !strings.HasPrefix(pings[0], "REPL PING ") {
		t.Fatalf("pings = %v", pings)
	}
}

func TestSegmentReaderRejects(t *testing.T) {
	cases := map[string]string{
		"checksum mismatch": "dn: a\n" + MarkerLine(1, []byte("dn: b\n"), 0),
		"length mismatch":   "dn: a\n" + fmt.Sprintf("%s seq=1 len=3 crc=%08x\n", MarkerPrefix, Checksum([]byte("dn: a\n"))),
		"legacy marker":     "dn: a\n" + MarkerPrefix + "\n",
		"damaged marker":    "dn: a\n" + MarkerPrefix + " seq=zap\n",
		"control mid-seg":   "dn: a\n" + PingLine(5, 1) + string(RawSegment(1, []byte("dn: a\n"), 0)),
	}
	for name, stream := range cases {
		sr := NewSegmentReader(strings.NewReader(stream))
		if _, err := sr.Next(nil); err == nil || err == io.EOF {
			t.Errorf("%s: error = %v, want rejection", name, err)
		}
	}
	// A torn tail (no trailing newline, or bytes after the last marker)
	// must be unexpected-EOF, distinguishable from a clean close.
	sr := NewSegmentReader(strings.NewReader("dn: half-a-segment"))
	if _, err := sr.Next(nil); err != io.ErrUnexpectedEOF {
		t.Errorf("torn stream: err = %v, want ErrUnexpectedEOF", err)
	}
	sr = NewSegmentReader(strings.NewReader(""))
	if _, err := sr.Next(nil); err != io.EOF {
		t.Errorf("clean close: err = %v, want EOF", err)
	}
}

// collectWriter records writes and signals each one.
type collectWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *collectWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *collectWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHubShipOrderAndFirst(t *testing.T) {
	h := NewHub(Async, 0, time.Hour, nil)
	defer h.Close()
	w := &collectWriter{}
	header := []byte(TailHeader(1, 0, 1))
	sub := h.Subscribe("r1", w, nil, header)
	s1, s2 := seg(t, 1, "dn: a\n\n"), seg(t, 2, "dn: b\n\n")
	h.Ship(1, s1.Raw)
	h.Ship(2, s2.Raw)
	want := string(header) + string(s1.Raw) + string(s2.Raw)
	waitFor(t, "subscriber drain", func() bool { return w.String() == want })
	st := h.Status()
	if st.Replicas != 1 || st.LastShipped != 2 {
		t.Fatalf("status = %+v", st)
	}
	h.Unsubscribe(sub)
	waitFor(t, "unsubscribe", func() bool { return h.Status().Replicas == 0 })
}

func TestHubSemiSyncGateAndAck(t *testing.T) {
	h := NewHub(SemiSync, time.Hour, time.Hour, nil)
	defer h.Close()
	w := &collectWriter{}
	sub := h.Subscribe("r1", w, nil)
	done := make(chan error, 1)
	h.Gate(5, done)
	select {
	case <-done:
		t.Fatal("gate released before ack")
	case <-time.After(20 * time.Millisecond):
	}
	h.Ack(sub, 4)
	select {
	case <-done:
		t.Fatal("gate released by an ack below its seq")
	case <-time.After(20 * time.Millisecond):
	}
	h.Ack(sub, 5)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("gate released with error %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("gate not released by covering ack")
	}
	// An ack that already covers the seq releases immediately.
	done2 := make(chan error, 1)
	h.Gate(3, done2)
	if err := <-done2; err != nil {
		t.Fatalf("pre-covered gate: %v", err)
	}
	if st := h.Status(); st.AckedSeq != 5 || st.Degraded {
		t.Fatalf("status = %+v", st)
	}
}

func TestHubSemiSyncDegradesWithoutReplicas(t *testing.T) {
	var logged []string
	var mu sync.Mutex
	h := NewHub(SemiSync, time.Hour, time.Hour, func(f string, a ...any) {
		mu.Lock()
		logged = append(logged, fmt.Sprintf(f, a...))
		mu.Unlock()
	})
	defer h.Close()
	done := make(chan error, 1)
	h.Gate(1, done)
	if err := <-done; err != nil {
		t.Fatalf("no-replica gate: %v", err)
	}
	if st := h.Status(); !st.Degraded {
		t.Fatalf("hub not degraded with no replicas: %+v", st)
	}
	// A replica that catches up to the shipped watermark re-arms it.
	w := &collectWriter{}
	sub := h.Subscribe("r1", w, nil)
	h.Ship(3, []byte("x"))
	h.Ack(sub, 3)
	if st := h.Status(); st.Degraded {
		t.Fatalf("hub still degraded after catch-up: %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(logged, "\n")
	if !strings.Contains(joined, "degraded") || !strings.Contains(joined, "re-enabled") {
		t.Fatalf("degradation transitions not logged:\n%s", joined)
	}
}

func TestHubSemiSyncAckTimeout(t *testing.T) {
	h := NewHub(SemiSync, 30*time.Millisecond, time.Hour, nil)
	defer h.Close()
	h.Subscribe("r1", &collectWriter{}, nil) // present but never acks
	done := make(chan error, 1)
	h.Gate(1, done)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("timed-out gate: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("gate not released by ack timeout")
	}
	if st := h.Status(); !st.Degraded {
		t.Fatalf("hub not degraded after timeout: %+v", st)
	}
}

func TestHubCloseReleasesGates(t *testing.T) {
	h := NewHub(SemiSync, time.Hour, time.Hour, nil)
	h.Subscribe("r1", &collectWriter{}, nil)
	done := make(chan error, 1)
	h.Gate(1, done)
	h.Close()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close left a gate parked")
	}
}

// fakeTarget implements Target over in-memory state.
type fakeTarget struct {
	mu         sync.Mutex
	last       uint64
	epoch      uint64
	boot       []byte
	bootSeq    uint64
	bootEpoch  uint64
	applied    []uint64
	primarySeq uint64
	applyErr   error
}

func (f *fakeTarget) LastSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

func (f *fakeTarget) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

func (f *fakeTarget) Bootstrap(seq, epoch uint64, snap []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.boot, f.bootSeq, f.bootEpoch, f.last = append([]byte(nil), snap...), seq, epoch, seq
	if epoch > f.epoch {
		f.epoch = epoch
	}
	return nil
}

func (f *fakeTarget) Apply(s Segment) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.applyErr != nil {
		return f.applyErr
	}
	if s.Seq <= f.last {
		return nil
	}
	if s.Seq != f.last+1 {
		return fmt.Errorf("gap: have %d, got %d", f.last, s.Seq)
	}
	f.last = s.Seq
	f.applied = append(f.applied, s.Seq)
	return nil
}

func (f *fakeTarget) ObservePrimarySeq(seq uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if seq > f.primarySeq {
		f.primarySeq = seq
	}
}

// TestClientRunSnapshotThenStream scripts the primary side over a pipe:
// snapshot bootstrap, two live segments, then a clean close, asserting
// the client acks each durability point.
func TestClientRunSnapshotThenStream(t *testing.T) {
	cli, prim := net.Pipe()
	target := &fakeTarget{}
	runErr := make(chan error, 1)
	go func() { runErr <- Run(cli, target) }()

	br := bufio.NewReader(prim)
	line, err := readLine(br)
	if err != nil {
		t.Fatalf("reading hello: %v", err)
	}
	if n, _, err := ParseHello(line); err != nil || n != 0 {
		t.Fatalf("hello = %q (%v)", line, err)
	}
	snap := []byte("# snapshot-seq 4\ndn: o=x\nobjectClass: top\n\n")
	io.WriteString(prim, SnapshotHeader(4, len(snap), 2))
	prim.Write(snap)
	if line, _ = readLine(br); line != strings.TrimRight(AckLine(4, 2), "\n") {
		t.Fatalf("snapshot ack = %q", line)
	}
	s5, s6 := epochSeg(t, 5, 2, "dn: a\nchangetype: delete\n\n"), epochSeg(t, 6, 2, "dn: b\nchangetype: delete\n\n")
	prim.Write(s5.Raw)
	// net.Pipe is synchronous: drain the ack before writing more.
	if line, _ = readLine(br); line != strings.TrimRight(AckLine(5, 2), "\n") {
		t.Fatalf("ack 5 = %q", line)
	}
	io.WriteString(prim, PingLine(6, 2))
	prim.Write(s6.Raw)
	if line, _ = readLine(br); line != strings.TrimRight(AckLine(6, 2), "\n") {
		t.Fatalf("ack 6 = %q", line)
	}
	prim.Close()
	if err := <-runErr; err != io.EOF {
		t.Fatalf("Run = %v, want EOF on clean close", err)
	}
	if target.bootSeq != 4 || target.bootEpoch != 2 || !bytes.Equal(target.boot, snap) {
		t.Fatalf("bootstrap seq=%d epoch=%d", target.bootSeq, target.bootEpoch)
	}
	if len(target.applied) != 2 || target.last != 6 || target.primarySeq != 6 {
		t.Fatalf("applied=%v last=%d primarySeq=%d", target.applied, target.last, target.primarySeq)
	}
}

// TestClientRunTail: a TAIL handshake streams verbatim segments with no
// bootstrap blob.
func TestClientRunTail(t *testing.T) {
	cli, prim := net.Pipe()
	target := &fakeTarget{last: 2, epoch: 1}
	runErr := make(chan error, 1)
	go func() { runErr <- Run(cli, target) }()

	br := bufio.NewReader(prim)
	line, _ := readLine(br)
	if n, e, err := ParseHello(line); err != nil || n != 2 || e != 1 {
		t.Fatalf("hello = %q", line)
	}
	io.WriteString(prim, TailHeader(3, 1, 1))
	prim.Write(seg(t, 3, "dn: c\nchangetype: delete\n\n").Raw)
	if line, _ = readLine(br); line != strings.TrimRight(AckLine(3, 1), "\n") {
		t.Fatalf("ack = %q", line)
	}
	prim.Close()
	<-runErr
	if target.last != 3 {
		t.Fatalf("target.last = %d", target.last)
	}
}

// TestClientRunRefused: a REPL ERR reply surfaces as an error.
func TestClientRunRefused(t *testing.T) {
	cli, prim := net.Pipe()
	runErr := make(chan error, 1)
	go func() { runErr <- Run(cli, &fakeTarget{}) }()
	br := bufio.NewReader(prim)
	readLine(br)
	io.WriteString(prim, ErrLine("not primary"))
	prim.Close()
	err := <-runErr
	if err == nil || !strings.Contains(err.Error(), "not primary") {
		t.Fatalf("refusal error = %v", err)
	}
}

// TestClientApplyErrorStopsRun: a target that rejects a segment ends the
// session with that error.
func TestClientApplyErrorStopsRun(t *testing.T) {
	cli, prim := net.Pipe()
	target := &fakeTarget{applyErr: fmt.Errorf("diverged")}
	runErr := make(chan error, 1)
	go func() { runErr <- Run(cli, target) }()
	br := bufio.NewReader(prim)
	readLine(br)
	io.WriteString(prim, TailHeader(1, 1, 0))
	prim.Write(seg(t, 1, "dn: a\nchangetype: delete\n\n").Raw)
	err := <-runErr
	prim.Close()
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("apply error = %v", err)
	}
}

// TestClientRefusesStalePrimary: a session announcing a lower epoch than
// the replica's own is refused with ErrStalePrimary, preceded by a
// poison ACK carrying the replica's higher epoch, and nothing is
// applied. The same segment from a same-epoch session applies — it is
// the epoch comparison alone that rejects it.
func TestClientRefusesStalePrimary(t *testing.T) {
	conflicting := "dn: split,o=x\nchangetype: delete\n\n"

	// Stale: the primary's TAIL header and segment are from epoch 1,
	// the replica has adopted epoch 2.
	cli, prim := net.Pipe()
	target := &fakeTarget{last: 2, epoch: 2}
	runErr := make(chan error, 1)
	go func() { runErr <- Run(cli, target) }()
	br := bufio.NewReader(prim)
	readLine(br) // HELLO
	io.WriteString(prim, TailHeader(3, 1, 1))
	line, err := readLine(br)
	if err != nil {
		t.Fatalf("reading poison ack: %v", err)
	}
	seq, epoch, err := ParseAck(line)
	if err != nil || seq != 2 || epoch != 2 {
		t.Fatalf("poison ack = %q (seq=%d epoch=%d err=%v), want the replica's seq and higher epoch", line, seq, epoch, err)
	}
	if err := <-runErr; !errors.Is(err, ErrStalePrimary) {
		t.Fatalf("Run = %v, want ErrStalePrimary", err)
	}
	if len(target.applied) != 0 || target.last != 2 {
		t.Fatalf("stale session mutated the target: applied=%v last=%d", target.applied, target.last)
	}
	prim.Close()

	// A lower-epoch segment inside an otherwise-accepted session is
	// refused the same way (the "rejected ship" trigger).
	cli, prim = net.Pipe()
	target = &fakeTarget{last: 2, epoch: 2}
	runErr = make(chan error, 1)
	go func() { runErr <- Run(cli, target) }()
	br = bufio.NewReader(prim)
	readLine(br)
	io.WriteString(prim, TailHeader(3, 1, 0)) // pre-epoch header: accepted
	prim.Write(epochSeg(t, 3, 1, conflicting).Raw)
	if line, _ := readLine(br); !strings.Contains(line, "epoch=2") {
		t.Fatalf("poison ack = %q", line)
	}
	if err := <-runErr; !errors.Is(err, ErrStalePrimary) {
		t.Fatalf("Run = %v, want ErrStalePrimary", err)
	}
	if len(target.applied) != 0 {
		t.Fatalf("stale segment applied: %v", target.applied)
	}
	prim.Close()

	// Control: the identical segment at the replica's own epoch applies.
	cli, prim = net.Pipe()
	target = &fakeTarget{last: 2, epoch: 2}
	runErr = make(chan error, 1)
	go func() { runErr <- Run(cli, target) }()
	br = bufio.NewReader(prim)
	readLine(br)
	io.WriteString(prim, TailHeader(3, 1, 2))
	prim.Write(epochSeg(t, 3, 2, conflicting).Raw)
	if line, _ := readLine(br); line != strings.TrimRight(AckLine(3, 2), "\n") {
		t.Fatalf("ack = %q", line)
	}
	prim.Close()
	<-runErr
	if target.last != 3 {
		t.Fatalf("same-epoch segment not applied: last=%d", target.last)
	}

	// An ERR refusal mentioning a stale epoch maps to ErrStalePrimary
	// so callers can distinguish it from ordinary refusals.
	cli, prim = net.Pipe()
	runErr = make(chan error, 1)
	go func() { runErr <- Run(cli, &fakeTarget{epoch: 2}) }()
	br = bufio.NewReader(prim)
	readLine(br)
	io.WriteString(prim, ErrLine("stale epoch: primary is at epoch 1, replica announced epoch 2"))
	prim.Close()
	if err := <-runErr; !errors.Is(err, ErrStalePrimary) {
		t.Fatalf("ERR refusal = %v, want ErrStalePrimary", err)
	}
}

package repl

import (
	"sync"
	"testing"
	"time"
)

// Edge cases of Hub.Ack: duplicate acks, regressed sequence numbers,
// acks arriving after Close, and acks racing degrade/re-arm. The ACK
// path is driven by remote bytes, so every one of these can happen —
// duplicated lines from a faulty network, a replica restarting into an
// older journal, a connection draining after shutdown.

func TestHubAckDuplicate(t *testing.T) {
	h := NewHub(SemiSync, time.Hour, time.Hour, nil)
	defer h.Close()
	sub := h.Subscribe("r1", &collectWriter{}, nil)
	h.Ship(5, []byte("x"))
	h.Ack(sub, 5)
	h.Ack(sub, 5) // duplicate: must be a no-op, not a double release
	if st := h.Status(); st.AckedSeq != 5 || st.Degraded {
		t.Fatalf("status after duplicate ack = %+v", st)
	}
	// A gate below the watermark still releases exactly once.
	done := make(chan error, 1)
	h.Gate(5, done)
	if err := <-done; err != nil {
		t.Fatalf("gate: %v", err)
	}
	select {
	case <-done:
		t.Fatal("gate released twice")
	default:
	}
}

func TestHubAckRegressedSeq(t *testing.T) {
	h := NewHub(SemiSync, time.Hour, time.Hour, nil)
	defer h.Close()
	sub := h.Subscribe("r1", &collectWriter{}, nil)
	h.Ship(7, []byte("x"))
	h.Ack(sub, 7)
	h.Ack(sub, 3) // a replica can never un-hold bytes: must not regress
	if st := h.Status(); st.AckedSeq != 7 {
		t.Fatalf("acked watermark regressed: %+v", st)
	}
	// A later gate at the old watermark is still pre-covered.
	done := make(chan error, 1)
	h.Gate(7, done)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("gate at the high watermark not pre-covered after a regressed ack")
	}
}

func TestHubAckAfterClose(t *testing.T) {
	h := NewHub(SemiSync, time.Hour, time.Hour, nil)
	sub := h.Subscribe("r1", &collectWriter{}, nil)
	h.Ship(2, []byte("x"))
	h.Close()
	// The conn reader can still be draining acks when Close lands; they
	// must be ignored, not resurrect hub state.
	h.Ack(sub, 2)
	if st := h.Status(); st.AckedSeq != 0 || st.Replicas != 0 {
		t.Fatalf("ack after close mutated the hub: %+v", st)
	}
}

// TestHubAckRacesDegrade hammers Ack against expiring gates so degrade,
// release and re-arm interleave freely; run under -race this is the
// regression net for the hub's locking. The invariant: once acks cover
// everything shipped, the hub must settle un-degraded with every gate
// released.
func TestHubAckRacesDegrade(t *testing.T) {
	h := NewHub(SemiSync, time.Millisecond, time.Hour, nil)
	defer h.Close()
	sub := h.Subscribe("r1", &collectWriter{}, nil)

	const n = 200
	var wg sync.WaitGroup
	gates := make([]chan error, n)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			h.Ship(uint64(i), []byte("x"))
			done := make(chan error, 1)
			gates[i-1] = done
			h.Gate(uint64(i), done)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			h.Ack(sub, uint64(i))
		}
	}()
	wg.Wait()
	h.Ack(sub, n) // cover the tail regardless of interleaving
	for i, done := range gates {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("gate %d: %v", i+1, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("gate %d never released", i+1)
		}
	}
	if st := h.Status(); st.AckedSeq != n {
		t.Fatalf("final status = %+v", st)
	}
	if st := h.Status(); st.Degraded {
		// Degrade may have fired mid-race (1ms timeout), but the final
		// covering ack must have re-armed it.
		t.Fatalf("hub still degraded after full coverage: %+v", st)
	}
}

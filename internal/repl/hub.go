package repl

import (
	"io"
	"sync"
	"time"
)

// Mode selects the primary's durability contract for replication.
type Mode int

const (
	// Async ships segments after the local fsync; COMMIT's OK promises
	// local durability only.
	Async Mode = iota
	// SemiSync gates COMMIT's OK on an ACK from at least one replica, so
	// OK means the record is durable on the primary AND one replica.
	// With no replica connected (or none answering within the ack
	// timeout) the hub degrades to async — logged and exposed as a gauge
	// — and re-arms once a replica catches back up.
	SemiSync
)

func (m Mode) String() string {
	if m == SemiSync {
		return "semisync"
	}
	return "async"
}

// ParseMode decodes the -repl-mode flag values.
func ParseMode(s string) (Mode, bool) {
	switch s {
	case "async":
		return Async, true
	case "semisync":
		return SemiSync, true
	}
	return Async, false
}

// DefaultAckTimeout bounds how long a semi-sync commit waits for a
// replica ACK before the hub degrades to async.
const DefaultAckTimeout = 2 * time.Second

// DefaultPingInterval spaces the heartbeat lines replicas derive their
// lag gauge from.
const DefaultPingInterval = 500 * time.Millisecond

// subQueueLen bounds a replica's outgoing queue. A replica that falls
// this far behind the live stream is dropped; it reconnects and catches
// up from the journal tail instead of holding memory on the primary.
const subQueueLen = 1024

// gate is one semi-sync commit waiting for replica durability.
type gate struct {
	seq  uint64
	done chan error
}

// Hub is the primary side of replication: it fans durable journal
// segments out to subscribed replicas, tracks their acknowledgements,
// and gates semi-sync commits. All methods are safe for concurrent use.
type Hub struct {
	mode       Mode
	ackTimeout time.Duration
	logf       func(format string, args ...any)

	mu          sync.Mutex
	epoch       uint64
	subs        map[*Sub]struct{}
	lastShipped uint64
	maxAcked    uint64
	degraded    bool
	gates       []gate
	closed      bool

	pingStop chan struct{}
	pingDone chan struct{}
}

// HubStatus is a snapshot of the hub's replication state, rendered by
// the server's METRICS surface.
type HubStatus struct {
	Mode        Mode
	Epoch       uint64
	Replicas    int
	LastShipped uint64
	AckedSeq    uint64
	Degraded    bool
}

// NewHub creates a hub. logf may be nil; ackTimeout and pingInterval
// fall back to the defaults when zero. The heartbeat loop starts
// immediately and runs until Close.
func NewHub(mode Mode, ackTimeout, pingInterval time.Duration, logf func(string, ...any)) *Hub {
	if ackTimeout <= 0 {
		ackTimeout = DefaultAckTimeout
	}
	if pingInterval <= 0 {
		pingInterval = DefaultPingInterval
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	h := &Hub{
		mode:       mode,
		ackTimeout: ackTimeout,
		logf:       logf,
		subs:       make(map[*Sub]struct{}),
		pingStop:   make(chan struct{}),
		pingDone:   make(chan struct{}),
	}
	go h.pingLoop(pingInterval)
	return h
}

// SetEpoch stamps the hub with the primary's replication epoch; it is
// carried on heartbeats and reported in Status. A hub's epoch is
// constant for its lifetime — promotion tears the old hub down.
func (h *Hub) SetEpoch(epoch uint64) {
	h.mu.Lock()
	h.epoch = epoch
	h.mu.Unlock()
}

// Sub is one subscribed replica connection. The hub owns a writer
// goroutine per subscriber so a slow replica never blocks Ship.
type Sub struct {
	id     string
	ch     chan []byte
	quit   chan struct{}
	once   sync.Once
	w      io.Writer
	onDrop func()
	acked  uint64
}

// ID names the subscriber (the replica's remote address) in logs.
func (s *Sub) ID() string { return s.id }

// Subscribe registers a replica connection. first is written before any
// queued segment — the bootstrap header and blob — so callers can
// register at the exact sequence point the bootstrap captures and rely
// on queue order for everything after. onDrop is invoked (once, from
// the writer goroutine) when the subscriber is dropped for a write
// error or queue overflow; it should close the connection.
func (h *Hub) Subscribe(id string, w io.Writer, onDrop func(), first ...[]byte) *Sub {
	sub := &Sub{
		id:     id,
		ch:     make(chan []byte, subQueueLen),
		quit:   make(chan struct{}),
		w:      w,
		onDrop: onDrop,
	}
	for _, b := range first {
		sub.ch <- b
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		sub.stop()
		return sub
	}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	go h.writeLoop(sub)
	h.logf("repl: replica %s subscribed", id)
	return sub
}

// Unsubscribe removes a replica (normal disconnect). Idempotent.
func (h *Hub) Unsubscribe(sub *Sub) { h.drop(sub, false) }

func (h *Hub) drop(sub *Sub, overflow bool) {
	h.mu.Lock()
	_, present := h.subs[sub]
	delete(h.subs, sub)
	h.mu.Unlock()
	sub.stop()
	if present && overflow {
		h.logf("repl: replica %s dropped (outgoing queue overflow; it will reconnect and catch up from the journal)", sub.id)
	}
}

func (s *Sub) stop() {
	s.once.Do(func() {
		close(s.quit)
		if s.onDrop != nil {
			s.onDrop()
		}
	})
}

func (h *Hub) writeLoop(sub *Sub) {
	for {
		select {
		case b := <-sub.ch:
			if _, err := sub.w.Write(b); err != nil {
				h.mu.Lock()
				delete(h.subs, sub)
				h.mu.Unlock()
				sub.stop()
				return
			}
		case <-sub.quit:
			return
		}
	}
}

// enqueue hands bytes to a subscriber without ever blocking; overflow
// drops the replica. Callers hold h.mu.
func (h *Hub) enqueue(sub *Sub, b []byte) {
	select {
	case sub.ch <- b:
	default:
		delete(h.subs, sub)
		go h.drop(sub, true)
	}
}

// Ship fans one durable segment (verbatim journal bytes) out to every
// subscriber and advances the shipped watermark. Callers must ship in
// journal order; the per-subscriber queues preserve it.
func (h *Hub) Ship(seq uint64, raw []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if seq > h.lastShipped {
		h.lastShipped = seq
	}
	for sub := range h.subs {
		h.enqueue(sub, raw)
	}
}

// Gate releases done when the semi-sync contract for seq is met: an ACK
// covering seq has arrived, the hub is (or becomes) degraded, or the
// hub closes. In async mode it releases immediately. The value sent is
// always nil — replication never fails a locally durable commit, it
// only delays or de-escalates its acknowledgement.
func (h *Hub) Gate(seq uint64, done chan error) {
	h.mu.Lock()
	if h.mode != SemiSync || h.closed || h.degraded || h.maxAcked >= seq {
		h.mu.Unlock()
		done <- nil
		return
	}
	if len(h.subs) == 0 {
		// No replica connected: degrade now instead of stalling every
		// commit for the ack timeout. Re-arms when a replica catches up.
		h.degradeLocked("no replica connected")
		h.mu.Unlock()
		done <- nil
		return
	}
	h.gates = append(h.gates, gate{seq: seq, done: done})
	h.mu.Unlock()
	time.AfterFunc(h.ackTimeout, func() { h.expire(seq) })
}

// expire fires when a gated commit has waited the full ack timeout; if
// it is still waiting, the hub degrades (releasing every gate).
func (h *Hub) expire(seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed || h.degraded || h.maxAcked >= seq {
		return
	}
	for _, g := range h.gates {
		if g.seq == seq {
			h.degradeLocked("ack timeout")
			return
		}
	}
}

// degradeLocked flips to async and releases every waiting commit.
// Callers hold h.mu.
func (h *Hub) degradeLocked(why string) {
	h.degraded = true
	h.logf("repl: semi-sync degraded to async (%s); commits acknowledge on local durability only", why)
	for _, g := range h.gates {
		g.done <- nil
	}
	h.gates = nil
}

// Ack records that sub holds everything through seq durably. It
// releases semi-sync gates the ack covers, and re-arms a degraded hub
// once the acknowledged watermark catches the shipped one.
func (h *Hub) Ack(sub *Sub, seq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if seq > sub.acked {
		sub.acked = seq
	}
	if seq <= h.maxAcked {
		return
	}
	h.maxAcked = seq
	kept := h.gates[:0]
	for _, g := range h.gates {
		if g.seq <= seq {
			g.done <- nil
		} else {
			kept = append(kept, g)
		}
	}
	h.gates = kept
	if h.degraded && h.mode == SemiSync && h.maxAcked >= h.lastShipped {
		h.degraded = false
		h.logf("repl: semi-sync re-enabled (replica caught up through seq %d)", seq)
	}
}

// Status snapshots the hub for the metrics surface.
func (h *Hub) Status() HubStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HubStatus{
		Mode:        h.mode,
		Epoch:       h.epoch,
		Replicas:    len(h.subs),
		LastShipped: h.lastShipped,
		AckedSeq:    h.maxAcked,
		Degraded:    h.degraded,
	}
}

// Close releases every waiting commit, drops every subscriber and stops
// the heartbeat loop. Safe to call once.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	for _, g := range h.gates {
		g.done <- nil
	}
	h.gates = nil
	subs := make([]*Sub, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
	}
	h.subs = make(map[*Sub]struct{})
	h.mu.Unlock()
	close(h.pingStop)
	for _, sub := range subs {
		sub.stop()
	}
	<-h.pingDone
}

func (h *Hub) pingLoop(every time.Duration) {
	defer close(h.pingDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			h.mu.Lock()
			if h.closed {
				h.mu.Unlock()
				return
			}
			line := []byte(PingLine(h.lastShipped, h.epoch))
			for sub := range h.subs {
				h.enqueue(sub, line)
			}
			h.mu.Unlock()
		case <-h.pingStop:
			return
		}
	}
}

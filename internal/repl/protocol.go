package repl

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// The control protocol around the segment stream. Control lines start
// with "REPL " so they can never be mistaken for journal bytes (LDIF
// change records begin lines with "dn:", attribute names, "-", "#" or
// blank). The handshake:
//
//	replica → REPL HELLO last_seq=<n> epoch=<e>
//	primary → REPL SNAPSHOT seq=<n> len=<b> epoch=<e>  followed by b snapshot bytes
//	        | REPL TAIL from=<m> count=<k> epoch=<e>   followed by the journal tail
//	        | REPL ERR <message>                       refusal; the connection closes
//
// then the primary streams segments (segment.go) interleaved with
//
//	primary → REPL PING seq=<n> epoch=<e>              heartbeat between segments
//	replica → REPL ACK seq=<n> epoch=<e>               segment n is locally durable
//
// Every parser tolerates a missing epoch field (treating it as epoch 0,
// "pre-epoch") so the wire format stays compatible with journals and
// peers from before epochs existed.

const (
	controlPrefix  = "REPL "
	helloPrefix    = "REPL HELLO "
	ackPrefix      = "REPL ACK "
	pingPrefix     = "REPL PING "
	errPrefix      = "REPL ERR "
	snapshotPrefix = "REPL SNAPSHOT "
	tailPrefix     = "REPL TAIL "
)

// MaxSegmentBytes bounds one streamed segment (payload plus marker); a
// peer claiming more is treated as a protocol error, not a huge alloc.
const MaxSegmentBytes = 64 << 20

// HelloLine opens the handshake: the replica announces the highest
// sequence number it holds durably and the replication epoch it last
// adopted.
func HelloLine(lastSeq, epoch uint64) string {
	return fmt.Sprintf("%slast_seq=%d epoch=%d\n", helloPrefix, lastSeq, epoch)
}

// ParseHello decodes a HELLO line (without trailing newline). A missing
// epoch field parses as epoch 0 (a pre-epoch peer).
func ParseHello(line string) (lastSeq, epoch uint64, err error) {
	rest, ok := strings.CutPrefix(line, helloPrefix)
	if !ok {
		return 0, 0, fmt.Errorf("repl: expected HELLO, got %q", line)
	}
	if n, serr := fmt.Sscanf(rest, "last_seq=%d epoch=%d", &lastSeq, &epoch); n < 1 || (serr != nil && n != 1) {
		return 0, 0, fmt.Errorf("repl: malformed HELLO %q", line)
	}
	return lastSeq, epoch, nil
}

// AckLine acknowledges that segment seq is durable on the replica,
// stamped with the replica's epoch. An ACK carrying a higher epoch than
// the primary's own is a fencing signal: the replica has adopted a
// newer primary and is poisoning this one.
func AckLine(seq, epoch uint64) string {
	return fmt.Sprintf("%sseq=%d epoch=%d\n", ackPrefix, seq, epoch)
}

// ParseAck decodes an ACK line (without trailing newline). A missing
// epoch field parses as epoch 0.
func ParseAck(line string) (seq, epoch uint64, err error) {
	rest, ok := strings.CutPrefix(line, ackPrefix)
	if !ok {
		return 0, 0, fmt.Errorf("repl: expected ACK, got %q", line)
	}
	if n, serr := fmt.Sscanf(rest, "seq=%d epoch=%d", &seq, &epoch); n < 1 || (serr != nil && n != 1) {
		return 0, 0, fmt.Errorf("repl: malformed ACK %q", line)
	}
	return seq, epoch, nil
}

// PingLine is the primary's heartbeat carrying its current durable
// sequence number, from which a replica derives its lag, and its epoch.
func PingLine(seq, epoch uint64) string {
	return fmt.Sprintf("%sseq=%d epoch=%d\n", pingPrefix, seq, epoch)
}

func parsePing(line string) (seq, epoch uint64, ok bool) {
	rest, found := strings.CutPrefix(line, pingPrefix)
	if !found {
		return 0, 0, false
	}
	if n, err := fmt.Sscanf(rest, "seq=%d epoch=%d", &seq, &epoch); n < 1 || (err != nil && n != 1) {
		return 0, 0, false
	}
	return seq, epoch, true
}

// ErrLine refuses a handshake with a reason.
func ErrLine(msg string) string {
	return errPrefix + strings.ReplaceAll(msg, "\n", " ") + "\n"
}

// SnapshotHeader announces a full-instance bootstrap: n bytes of
// LDIF (including the "# snapshot-seq" / "# snapshot-epoch" headers)
// follow, compacting the history through seq under the primary's epoch.
func SnapshotHeader(seq uint64, n int, epoch uint64) string {
	return fmt.Sprintf("%sseq=%d len=%d epoch=%d\n", snapshotPrefix, seq, n, epoch)
}

// TailHeader announces a catch-up from the journal tail: count verbatim
// segments starting at sequence number from follow, then the live
// stream. count may be 0 (the replica is already caught up). epoch is
// the primary's current epoch.
func TailHeader(from uint64, count int, epoch uint64) string {
	return fmt.Sprintf("%sfrom=%d count=%d epoch=%d\n", tailPrefix, from, count, epoch)
}

// SegmentReader incrementally parses the primary's byte stream into
// verified segments, dispatching interleaved control lines (pings) to a
// callback. It enforces the same verdict logic as the journal scanner:
// a complete marker whose payload fails length or CRC verification is
// corruption, and legacy (bare) markers are not acceptable on the wire.
type SegmentReader struct {
	r       *bufio.Reader
	payload bytes.Buffer
}

// NewSegmentReader wraps the connection's read side.
func NewSegmentReader(r io.Reader) *SegmentReader {
	return &SegmentReader{r: bufio.NewReaderSize(r, 64*1024)}
}

// Next returns the next verified segment. Control lines between
// segments are passed to onControl (which may be nil). Errors are
// terminal: a malformed marker, a checksum mismatch, a control line
// splitting a segment, or the underlying read error (io.EOF when the
// primary closes cleanly between segments).
func (sr *SegmentReader) Next(onControl func(line string)) (Segment, error) {
	for {
		line, err := sr.r.ReadBytes('\n')
		if err != nil {
			if err == io.EOF && (len(line) > 0 || sr.payload.Len() > 0) {
				return Segment{}, io.ErrUnexpectedEOF
			}
			return Segment{}, err
		}
		switch {
		case bytes.HasPrefix(line, []byte(controlPrefix)):
			if sr.payload.Len() > 0 {
				return Segment{}, fmt.Errorf("repl: control line %q inside a segment", bytes.TrimSpace(line))
			}
			if onControl != nil {
				onControl(strings.TrimRight(string(line), "\n"))
			}
		case IsMarkerLine(bytes.TrimRight(line, "\n")):
			marker := bytes.TrimRight(line, "\n")
			seq, length, crc, epoch, legacy, perr := ParseMarker(marker)
			if perr != nil {
				return Segment{}, fmt.Errorf("repl: %v", perr)
			}
			if legacy {
				return Segment{}, fmt.Errorf("repl: legacy bare marker on the wire")
			}
			payload := append([]byte(nil), sr.payload.Bytes()...)
			sr.payload.Reset()
			if int64(len(payload)) != length {
				return Segment{}, fmt.Errorf("repl: segment seq=%d: payload is %d bytes, marker says %d", seq, len(payload), length)
			}
			if Checksum(payload) != crc {
				return Segment{}, fmt.Errorf("repl: segment seq=%d: checksum mismatch (stored %08x, computed %08x)",
					seq, crc, Checksum(payload))
			}
			raw := make([]byte, 0, len(payload)+len(line))
			raw = append(raw, payload...)
			raw = append(raw, line...)
			return Segment{Seq: seq, Epoch: epoch, Payload: payload, Raw: raw}, nil
		default:
			if sr.payload.Len()+len(line) > MaxSegmentBytes {
				return Segment{}, fmt.Errorf("repl: segment exceeds %d bytes without a marker", MaxSegmentBytes)
			}
			sr.payload.Write(line)
		}
	}
}

// readLine reads one newline-terminated control line, trimming the
// terminator. Shared by the handshake paths on both sides.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

package repl

import (
	"math/rand"
	"time"
)

// JitterBackoff spreads a reconnect delay with equal jitter: half of d
// fixed plus a uniform random half. Peers that all lost the same
// endpoint at the same instant otherwise reconnect in lockstep and
// hammer it with synchronized dial storms on every backoff step. Used
// by the replica streaming loop and the shard router's connection
// pools, which share the same redial problem.
func JitterBackoff(d time.Duration) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// NextBackoff doubles a backoff delay up to cap.
func NextBackoff(d, cap time.Duration) time.Duration {
	d *= 2
	if d > cap {
		return cap
	}
	return d
}

// Package repl implements streaming journal replication: a primary ships
// acknowledged journal records — the seq/CRC-marked transaction segments
// the commit pipeline already writes — verbatim over a dedicated TCP
// stream, and replicas verify (CRC, sequence continuity) and apply them
// through the same recovery machinery that replays a journal at startup.
//
// The package owns the journal segment framing so the on-disk log and
// the wire stream are one format:
//
//	<LDIF change records…>
//	# commit seq=<n> len=<payload bytes> crc=<crc32c, 8 hex digits> epoch=<e>
//
// (the epoch field is omitted from records written before replication
// epochs existed; epoch 0 on the wire means "pre-epoch").
//
// Around that byte stream sits a small line-oriented control protocol
// (protocol.go): a replica opens with "REPL HELLO last_seq=<n>
// epoch=<e>", the primary answers with either a full snapshot or the
// journal tail, then streams segments forever, interleaving "REPL PING
// seq=<n> epoch=<e>" heartbeats between segments; the replica answers
// "REPL ACK seq=<n> epoch=<e>" after each segment is locally durable,
// which is what semi-sync commits wait on (hub.go). Epochs fence stale
// primaries: PROMOTE bumps the epoch, replicas refuse sessions from a
// lower-epoch primary (client.go), and a primary that observes a higher
// epoch in a HELLO or an ACK fences itself read-only.
package repl

import (
	"bytes"
	"fmt"
	"hash/crc32"
)

// MarkerPrefix starts the checksummed line terminating every journal
// segment. The marker is an LDIF comment, so generic LDIF tooling
// ignores it.
const MarkerPrefix = "# commit"

var crc32cTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC32C over a segment's payload bytes — the checksum
// the marker line carries.
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, crc32cTable)
}

// MarkerLine renders the checksummed marker terminating a transaction's
// journal payload. epoch is the replication epoch the transaction was
// committed under; epoch 0 renders the pre-epoch marker format so
// journals written before epochs existed stay byte-reproducible.
func MarkerLine(seq uint64, payload []byte, epoch uint64) string {
	if epoch == 0 {
		return fmt.Sprintf("%s seq=%d len=%d crc=%08x\n",
			MarkerPrefix, seq, len(payload), Checksum(payload))
	}
	return fmt.Sprintf("%s seq=%d len=%d crc=%08x epoch=%d\n",
		MarkerPrefix, seq, len(payload), Checksum(payload), epoch)
}

// IsMarkerLine reports whether a journal line is a commit marker.
func IsMarkerLine(line []byte) bool {
	return bytes.HasPrefix(line, []byte(MarkerPrefix))
}

// ParseMarker decodes a complete "# commit…" line. legacy is true for
// the bare pre-checksum marker; epoch is 0 for markers written before
// replication epochs existed; err means the line claims to be a marker
// but its fields do not parse — a damaged marker, which is corruption,
// not a tear, because the line is complete.
func ParseMarker(line []byte) (seq uint64, length int64, crc uint32, epoch uint64, legacy bool, err error) {
	rest := line[len(MarkerPrefix):]
	if len(rest) == 0 {
		return 0, 0, 0, 0, true, nil
	}
	if rest[0] != ' ' {
		return 0, 0, 0, 0, false, fmt.Errorf("damaged marker %q", line)
	}
	n, serr := fmt.Sscanf(string(rest), " seq=%d len=%d crc=%x epoch=%d", &seq, &length, &crc, &epoch)
	if n == 3 && seq != 0 && !bytes.Contains(rest, []byte(" epoch=")) {
		// Pre-epoch marker: three fields and no epoch token. Sscanf
		// reports an error for the missing fourth verb; that is not
		// damage.
		return seq, length, crc, 0, false, nil
	}
	if serr != nil || n != 4 || seq == 0 {
		return 0, 0, 0, 0, false, fmt.Errorf("damaged marker %q", line)
	}
	return seq, length, crc, epoch, false, nil
}

// Segment is one verified replication unit: exactly one committed
// transaction as it sits in the journal.
type Segment struct {
	Seq     uint64
	Epoch   uint64 // replication epoch from the marker; 0 for pre-epoch records
	Payload []byte // the LDIF change records, without the marker line
	Raw     []byte // Payload plus the marker line — the verbatim journal bytes
}

// RawSegment reconstructs the verbatim journal bytes of a payload at
// seq. Because MarkerLine is deterministic, the result is byte-identical
// to what the committer appended.
func RawSegment(seq uint64, payload []byte, epoch uint64) []byte {
	marker := MarkerLine(seq, payload, epoch)
	raw := make([]byte, 0, len(payload)+len(marker))
	raw = append(raw, payload...)
	raw = append(raw, marker...)
	return raw
}

// Package repl implements streaming journal replication: a primary ships
// acknowledged journal records — the seq/CRC-marked transaction segments
// the commit pipeline already writes — verbatim over a dedicated TCP
// stream, and replicas verify (CRC, sequence continuity) and apply them
// through the same recovery machinery that replays a journal at startup.
//
// The package owns the journal segment framing so the on-disk log and
// the wire stream are one format:
//
//	<LDIF change records…>
//	# commit seq=<n> len=<payload bytes> crc=<crc32c, 8 hex digits>
//
// Around that byte stream sits a small line-oriented control protocol
// (protocol.go): a replica opens with "REPL HELLO last_seq=<n>", the
// primary answers with either a full snapshot or the journal tail, then
// streams segments forever, interleaving "REPL PING seq=<n>" heartbeats
// between segments; the replica answers "REPL ACK seq=<n>" after each
// segment is locally durable, which is what semi-sync commits wait on
// (hub.go).
package repl

import (
	"bytes"
	"fmt"
	"hash/crc32"
)

// MarkerPrefix starts the checksummed line terminating every journal
// segment. The marker is an LDIF comment, so generic LDIF tooling
// ignores it.
const MarkerPrefix = "# commit"

var crc32cTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum is the CRC32C over a segment's payload bytes — the checksum
// the marker line carries.
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, crc32cTable)
}

// MarkerLine renders the checksummed marker terminating a transaction's
// journal payload.
func MarkerLine(seq uint64, payload []byte) string {
	return fmt.Sprintf("%s seq=%d len=%d crc=%08x\n",
		MarkerPrefix, seq, len(payload), Checksum(payload))
}

// IsMarkerLine reports whether a journal line is a commit marker.
func IsMarkerLine(line []byte) bool {
	return bytes.HasPrefix(line, []byte(MarkerPrefix))
}

// ParseMarker decodes a complete "# commit…" line. legacy is true for
// the bare pre-checksum marker; err means the line claims to be a
// marker but its fields do not parse — a damaged marker, which is
// corruption, not a tear, because the line is complete.
func ParseMarker(line []byte) (seq uint64, length int64, crc uint32, legacy bool, err error) {
	rest := line[len(MarkerPrefix):]
	if len(rest) == 0 {
		return 0, 0, 0, true, nil
	}
	if rest[0] != ' ' {
		return 0, 0, 0, false, fmt.Errorf("damaged marker %q", line)
	}
	n, serr := fmt.Sscanf(string(rest), " seq=%d len=%d crc=%x", &seq, &length, &crc)
	if serr != nil || n != 3 || seq == 0 {
		return 0, 0, 0, false, fmt.Errorf("damaged marker %q", line)
	}
	return seq, length, crc, false, nil
}

// Segment is one verified replication unit: exactly one committed
// transaction as it sits in the journal.
type Segment struct {
	Seq     uint64
	Payload []byte // the LDIF change records, without the marker line
	Raw     []byte // Payload plus the marker line — the verbatim journal bytes
}

// RawSegment reconstructs the verbatim journal bytes of a payload at
// seq. Because MarkerLine is deterministic, the result is byte-identical
// to what the committer appended.
func RawSegment(seq uint64, payload []byte) []byte {
	marker := MarkerLine(seq, payload)
	raw := make([]byte, 0, len(payload)+len(marker))
	raw = append(raw, payload...)
	raw = append(raw, marker...)
	return raw
}

package hquery

import (
	"boundschema/internal/dirtree"
	"boundschema/internal/filter"
)

// SchemaFacts supplies schema-derived guarantees about *legal* instances,
// used by Optimize. The paper's conclusion (§7) points at exactly this:
// "query optimization is facilitated using schema". The core package's
// inference closure implements the interface.
//
// All guarantees are with respect to instances legal under the schema;
// optimized queries are equivalent to the originals only on such
// instances.
type SchemaFacts interface {
	// UnsatClass reports that no entry of class c occurs in any legal
	// instance.
	UnsatClass(c string) bool
	// Required reports that every ci entry has an axis-related cj entry
	// (axis is one of "child", "descendant", "parent", "ancestor").
	Required(ci, axis, cj string) bool
	// Forbidden reports that no cj entry is a child/descendant of a ci
	// entry (axis is "child" or "descendant").
	Forbidden(ci, axis, cj string) bool
}

// Optimize rewrites the query using schema guarantees, preserving its
// results on every instance legal under the schema the facts derive
// from:
//
//   - an atom over an unsatisfiable class is empty;
//   - δax(σci, σcj) collapses to σci when the schema guarantees the
//     relationship, and to ∅ when it forbids it;
//   - operators over empty operands fold away;
//   - σ−(q, q) is empty.
//
// Only atoms over the default instance participate (the Figure 5
// Δ-queries mix sub-instances, where these guarantees do not transfer).
// Empty results are represented as atoms over the ∅ instance, so the
// optimized query stays a regular Query.
func Optimize(q Query, f SchemaFacts) Query {
	return optimize(q, f)
}

// IsStaticallyEmpty reports whether the query optimized to a form that is
// empty on every legal instance — e.g. a Figure 4 violation query whose
// element the schema itself guarantees.
func IsStaticallyEmpty(q Query) bool {
	sel, ok := q.(selectQ)
	return ok && sel.inst == InstEmpty
}

func optimize(q Query, f SchemaFacts) Query {
	switch t := q.(type) {
	case selectQ:
		if t.inst != InstDefault {
			return t
		}
		if cls, rest, ok := classLead(t.f); ok && rest == nil && f.UnsatClass(cls) {
			return emptyOf(t.f)
		}
		return t

	case binQ:
		left := optimize(t.left, f)
		right := optimize(t.right, f)

		// Fold empties.
		if IsStaticallyEmpty(left) {
			return left // every operator with an empty left is empty
		}
		if IsStaticallyEmpty(right) {
			if t.kind == opMinus {
				return left // σ−(A, ∅) = A
			}
			return emptyQuery(left) // joins with an empty right are empty
		}

		// σ−(q, q) = ∅.
		if t.kind == opMinus && String(left) == String(right) {
			return emptyQuery(left)
		}

		// Axis guarantees between pure default-instance class atoms.
		if ci, ok1 := pureDefaultClass(left); ok1 {
			if cj, ok2 := pureDefaultClass(right); ok2 {
				axis := axisName(t.kind)
				if axis != "" {
					// A forbidden pair empties the join: downward axes
					// directly, upward axes through the flipped fact
					// (forb(cj,ch,ci) means no ci sits under a cj).
					switch t.kind {
					case opChild, opDesc:
						if f.Forbidden(ci, axis, cj) {
							return emptyQuery(left)
						}
					case opParent:
						if f.Forbidden(cj, "child", ci) {
							return emptyQuery(left)
						}
					case opAnc:
						if f.Forbidden(cj, "descendant", ci) {
							return emptyQuery(left)
						}
					}
					if f.Required(ci, axis, cj) {
						return left // every ci entry qualifies
					}
				}
			}
		}
		return binQ{kind: t.kind, left: left, right: right}
	}
	return q
}

// pureDefaultClass recognizes an (objectClass=c) atom over the default
// instance.
func pureDefaultClass(q Query) (string, bool) {
	sel, ok := q.(selectQ)
	if !ok || sel.inst != InstDefault {
		return "", false
	}
	cls, rest, ok := classLead(sel.f)
	if !ok || rest != nil {
		return "", false
	}
	return cls, true
}

func axisName(k opKind) string {
	switch k {
	case opChild:
		return "child"
	case opDesc:
		return "descendant"
	case opParent:
		return "parent"
	case opAnc:
		return "ancestor"
	}
	return ""
}

// emptyQuery returns a statically-empty query; when the operand was a
// class atom its filter is preserved for readability.
func emptyQuery(operand Query) Query {
	if sel, ok := operand.(selectQ); ok {
		return emptyOf(sel.f)
	}
	return emptyOf(filter.ClassIs(dirtree.AttrObjectClass))
}

func emptyOf(f filter.Filter) Query { return selectQ{f: f, inst: InstEmpty} }

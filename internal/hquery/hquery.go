// Package hquery implements the fragment of the hierarchical selection
// query language of Jagadish et al. (SIGMOD 1999, reference [9] of the
// paper) that the bounding-schema legality tests reduce to (Section 3.2):
// atomic selections, the four hierarchical combinators (child, parent,
// descendant, ancestor), and set difference.
//
// Evaluation is linear: with the directory's per-class posting lists
// sorted in pre-order (dirtree), every operator is a hash or merge join
// over its sorted inputs, giving the O(|Q|·|D|) bound that Theorem 3.1
// relies on.
//
// To support the incremental Δ-queries of Figure 5 — which evaluate
// different sub-expressions of one query against different sub-instances
// (∅, Δ, D, D±Δ) — every atomic selection carries an instance tag that is
// resolved against a Binding at evaluation time.
package hquery

import (
	"sort"
	"strings"

	"boundschema/internal/dirtree"
	"boundschema/internal/filter"
)

// Inst names the sub-instance an atomic selection draws its entries from,
// following the bracket annotations of Figure 5.
type Inst int

// Instance tags.
const (
	InstDefault Inst = iota // the binding's default instance (plain queries)
	InstEmpty               // ∅ — no entries
	InstDelta               // Δ — the inserted or to-be-deleted subtree
	InstBase                // D — the instance without Δ
	InstFull                // D+Δ (after insertion) or D (before deletion)
)

func (i Inst) String() string {
	switch i {
	case InstDefault:
		return "D"
	case InstEmpty:
		return "0"
	case InstDelta:
		return "delta"
	case InstBase:
		return "base"
	case InstFull:
		return "full"
	}
	return "?"
}

// Binding resolves instance tags to concrete views over one directory.
// For ordinary (non-incremental) evaluation use NewBinding.
//
// A Binding is an immutable value and may be shared across goroutines;
// concurrent evaluation is read-only provided the bound directories'
// interval encodings are current and nothing mutates them while
// evaluations are in flight. See AuditReadOnly (concurrency.go) for the
// precise contract.
type Binding struct {
	Default dirtree.View
	Delta   dirtree.View
	Base    dirtree.View
	Full    dirtree.View
}

// NewBinding binds every tag to the whole directory, for plain queries.
func NewBinding(d *dirtree.Directory) Binding {
	all := d.All()
	return Binding{Default: all, Delta: all, Base: all, Full: all}
}

// DeltaBinding binds the tags for an incremental check where delta is the
// inserted (already grafted) or to-be-deleted (not yet removed) subtree:
// Δ = the subtree, D = everything else, full = the whole current forest.
func DeltaBinding(d *dirtree.Directory, delta *dirtree.Entry) Binding {
	return Binding{
		Default: d.All(),
		Delta:   d.SubtreeView(delta),
		Base:    d.ExceptSubtreeView(delta),
		Full:    d.All(),
	}
}

func (b Binding) view(i Inst) dirtree.View {
	switch i {
	case InstEmpty:
		return b.Default.Directory().EmptyView()
	case InstDelta:
		return b.Delta
	case InstBase:
		return b.Base
	case InstFull:
		return b.Full
	default:
		return b.Default
	}
}

// Query is a hierarchical selection query. Results of evaluation are entry
// lists sorted by pre-order rank.
type Query interface {
	eval(b Binding) []*dirtree.Entry
	writeTo(sb *strings.Builder)
	// Size returns |Q|, the number of operators and atoms, used in the
	// O(|Q|·|D|) accounting of Theorem 3.1.
	Size() int
}

// Eval evaluates the query against the binding and returns the matching
// entries in pre-order.
func Eval(q Query, b Binding) []*dirtree.Entry {
	b.Default.Directory().EnsureEncoded()
	return q.eval(b)
}

// Empty reports whether the query evaluates to the empty set — the
// legality criterion of Section 3.2.
func Empty(q Query, b Binding) bool { return len(Eval(q, b)) == 0 }

// String renders a query in the s-expression form accepted by Parse, with
// the operator names matching the paper's σ, σ−, δc, δp, δd, δa.
func String(q Query) string {
	var sb strings.Builder
	q.writeTo(&sb)
	return sb.String()
}

// ---------------------------------------------------------------------
// Atomic selection.

type selectQ struct {
	f    filter.Filter
	inst Inst
}

// Select returns the atomic selection σ(f) over the binding's default
// instance.
func Select(f filter.Filter) Query { return selectQ{f: f, inst: InstDefault} }

// SelectOn returns the atomic selection σ(f) evaluated against the named
// sub-instance, as in Figure 5's "(objectClass=ci)[Δ]".
func SelectOn(f filter.Filter, inst Inst) Query { return selectQ{f: f, inst: inst} }

// ClassAtom is shorthand for the ubiquitous (objectClass=c) atom.
func ClassAtom(c string) Query { return Select(filter.ClassIs(c)) }

// ClassAtomOn is ClassAtom with an explicit instance tag.
func ClassAtomOn(c string, inst Inst) Query { return SelectOn(filter.ClassIs(c), inst) }

func (q selectQ) Size() int { return 1 }

func (q selectQ) eval(b Binding) []*dirtree.Entry {
	v := b.view(q.inst)
	if v.IsEmptyView() {
		return nil
	}
	// Pure objectClass equality — the legality-check hot path (Figure 4
	// translates every structure-schema element to such atoms) — reads the
	// posting list without consulting the planner.
	if c, ok := q.f.(filter.Compare); ok && c.Op == filter.OpEqual && c.Attr == dirtree.AttrObjectClass {
		return v.ClassEntries(c.Value)
	}
	p := planSelect(q.f, v)
	return p.execute(q.f, v)
}

// classLead recognizes filters of the form (objectClass=c) or
// (&(objectClass=c) rest...) and returns the class plus the residual
// filter (nil if none).
func classLead(f filter.Filter) (string, filter.Filter, bool) {
	switch t := f.(type) {
	case filter.Compare:
		if t.Op == filter.OpEqual && t.Attr == dirtree.AttrObjectClass {
			return t.Value, nil, true
		}
	case filter.And:
		for i, sub := range t {
			if c, ok := sub.(filter.Compare); ok && c.Op == filter.OpEqual && c.Attr == dirtree.AttrObjectClass {
				rest := make(filter.And, 0, len(t)-1)
				rest = append(rest, t[:i]...)
				rest = append(rest, t[i+1:]...)
				if len(rest) == 0 {
					return c.Value, nil, true
				}
				return c.Value, rest, true
			}
		}
	}
	return "", nil, false
}

func (q selectQ) writeTo(sb *strings.Builder) {
	sb.WriteString("(select ")
	sb.WriteString(q.f.String())
	if q.inst != InstDefault {
		sb.WriteString(" @")
		sb.WriteString(q.inst.String())
	}
	sb.WriteByte(')')
}

// ---------------------------------------------------------------------
// Binary operators.

type opKind int

const (
	opChild  opKind = iota // δc: left entries with a child in right
	opParent               // δp: left entries whose parent is in right
	opDesc                 // δd: left entries with a descendant in right
	opAnc                  // δa: left entries with an ancestor in right
	opMinus                // σ−: left minus right
)

var opNames = [...]string{"child", "parent", "desc", "anc", "minus"}

type binQ struct {
	kind        opKind
	left, right Query
}

// Child returns δc(left, right): the entries of left having at least one
// child in right.
func Child(left, right Query) Query { return binQ{opChild, left, right} }

// Parent returns δp(left, right): the entries of left whose parent is in
// right.
func Parent(left, right Query) Query { return binQ{opParent, left, right} }

// Desc returns δd(left, right): the entries of left having at least one
// proper descendant in right.
func Desc(left, right Query) Query { return binQ{opDesc, left, right} }

// Anc returns δa(left, right): the entries of left having at least one
// proper ancestor in right.
func Anc(left, right Query) Query { return binQ{opAnc, left, right} }

// Minus returns σ−(left, right): the entries of left that are not in
// right.
func Minus(left, right Query) Query { return binQ{opMinus, left, right} }

func (q binQ) Size() int { return 1 + q.left.Size() + q.right.Size() }

func (q binQ) writeTo(sb *strings.Builder) {
	sb.WriteByte('(')
	sb.WriteString(opNames[q.kind])
	sb.WriteByte(' ')
	q.left.writeTo(sb)
	sb.WriteByte(' ')
	q.right.writeTo(sb)
	sb.WriteByte(')')
}

func (q binQ) eval(b Binding) []*dirtree.Entry {
	// Skew-aware fast paths: when one operand is an atomic selection over
	// a much larger instance than the other operand's result, probe the
	// atom per candidate instead of materializing it. This keeps the
	// Figure 5 incremental checks O(|Δ|) even though their queries mix Δ
	// atoms with full-instance atoms (e.g. the pa/an rows and the
	// forbidden rows), while changing nothing semantically.
	switch q.kind {
	case opParent, opAnc:
		left := q.left.eval(b)
		if len(left) == 0 {
			return nil
		}
		if m, ok := atomMatcher(q.right, b); ok && skewed(len(left), m.size) {
			if q.kind == opParent {
				return probeParent(left, m)
			}
			return probeAnc(left, m)
		}
		right := q.right.eval(b)
		if q.kind == opParent {
			return joinParent(left, right)
		}
		return joinAnc(left, right)

	case opChild, opDesc:
		if m, ok := atomMatcher(q.left, b); ok {
			right := q.right.eval(b)
			if len(right) == 0 {
				return nil
			}
			if skewed(len(right), m.size) {
				if q.kind == opChild {
					return probeChild(m, right)
				}
				return probeDesc(m, right)
			}
			left := q.left.eval(b)
			if q.kind == opChild {
				return joinChild(left, right)
			}
			return joinDesc(left, right)
		}
	}

	left := q.left.eval(b)
	if len(left) == 0 {
		return nil
	}
	right := q.right.eval(b)
	switch q.kind {
	case opChild:
		return joinChild(left, right)
	case opParent:
		return joinParent(left, right)
	case opDesc:
		return joinDesc(left, right)
	case opAnc:
		return joinAnc(left, right)
	case opMinus:
		return diff(left, right)
	}
	return nil
}

// skewed decides whether probing the atom per candidate beats
// materializing it.
func skewed(small, atomSize int) bool { return small*8 < atomSize }

// matcher tests membership in an atomic selection without evaluating it.
type matcher struct {
	v    dirtree.View
	f    filter.Filter
	size int
}

func (m matcher) match(e *dirtree.Entry) bool {
	return m.v.Contains(e) && m.f.Matches(e)
}

// atomMatcher recognizes an atomic selection operand and returns a
// membership tester plus a cheap upper bound on its result size. The
// bound is the planner's cardinality estimate, so index-servable atoms
// (not just bare class atoms) enable the skewed probe paths.
func atomMatcher(q Query, b Binding) (matcher, bool) {
	sel, ok := q.(selectQ)
	if !ok {
		return matcher{}, false
	}
	v := b.view(sel.inst)
	size := 0
	if !v.IsEmptyView() {
		size = planSelect(sel.f, v).est
	}
	return matcher{v: v, f: sel.f, size: size}, true
}

// probeParent keeps the left entries whose parent matches the right atom.
// O(|L|).
func probeParent(left []*dirtree.Entry, m matcher) []*dirtree.Entry {
	var out []*dirtree.Entry
	for _, l := range left {
		if p := l.Parent(); p != nil && m.match(p) {
			out = append(out, l)
		}
	}
	return out
}

// probeAnc keeps the left entries having a proper ancestor matching the
// right atom. O(|L|·depth).
func probeAnc(left []*dirtree.Entry, m matcher) []*dirtree.Entry {
	var out []*dirtree.Entry
	for _, l := range left {
		for p := l.Parent(); p != nil; p = p.Parent() {
			if m.match(p) {
				out = append(out, l)
				break
			}
		}
	}
	return out
}

// probeChild returns the entries matching the left atom that have a child
// in right: the candidates are the parents of right. O(|R| log |R|).
func probeChild(m matcher, right []*dirtree.Entry) []*dirtree.Entry {
	seen := make(map[*dirtree.Entry]struct{}, len(right))
	var out []*dirtree.Entry
	for _, r := range right {
		p := r.Parent()
		if p == nil {
			continue
		}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		if m.match(p) {
			out = append(out, p)
		}
	}
	sortByPre(out)
	return out
}

// probeDesc returns the entries matching the left atom that have a proper
// descendant in right: the candidates are the ancestors of right entries.
// O(|R|·depth) before deduplication.
func probeDesc(m matcher, right []*dirtree.Entry) []*dirtree.Entry {
	seen := make(map[*dirtree.Entry]struct{})
	var out []*dirtree.Entry
	for _, r := range right {
		for p := r.Parent(); p != nil; p = p.Parent() {
			if _, dup := seen[p]; dup {
				break // all higher ancestors were visited already
			}
			seen[p] = struct{}{}
			if m.match(p) {
				out = append(out, p)
			}
		}
	}
	sortByPre(out)
	return out
}

func sortByPre(es []*dirtree.Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].Pre() < es[j].Pre() })
}

// joinChild keeps the left entries having a child in right: hash the
// parents of right, probe with left. O(|L|+|R|).
func joinChild(left, right []*dirtree.Entry) []*dirtree.Entry {
	if len(right) == 0 {
		return nil
	}
	parents := make(map[*dirtree.Entry]struct{}, len(right))
	for _, r := range right {
		if p := r.Parent(); p != nil {
			parents[p] = struct{}{}
		}
	}
	var out []*dirtree.Entry
	for _, l := range left {
		if _, ok := parents[l]; ok {
			out = append(out, l)
		}
	}
	return out
}

// joinParent keeps the left entries whose parent is in right. O(|L|+|R|).
func joinParent(left, right []*dirtree.Entry) []*dirtree.Entry {
	if len(right) == 0 {
		return nil
	}
	set := make(map[*dirtree.Entry]struct{}, len(right))
	for _, r := range right {
		set[r] = struct{}{}
	}
	var out []*dirtree.Entry
	for _, l := range left {
		if p := l.Parent(); p != nil {
			if _, ok := set[p]; ok {
				out = append(out, l)
			}
		}
	}
	return out
}

// joinDesc keeps the left entries having a proper descendant in right.
// Both inputs are pre-sorted; a two-pointer merge suffices because the
// witness for each l is the first right entry with pre > l.pre.
// O(|L|+|R|).
func joinDesc(left, right []*dirtree.Entry) []*dirtree.Entry {
	var out []*dirtree.Entry
	j := 0
	for _, l := range left {
		for j < len(right) && right[j].Pre() <= l.Pre() {
			j++
		}
		if j < len(right) && right[j].Pre() <= l.Post() {
			out = append(out, l)
		}
	}
	return out
}

// joinAnc keeps the left entries having a proper ancestor in right, via a
// staircase sweep maintaining the stack of right intervals open at the
// current pre rank. O(|L|+|R|).
func joinAnc(left, right []*dirtree.Entry) []*dirtree.Entry {
	var out []*dirtree.Entry
	var stack []*dirtree.Entry
	j := 0
	for _, l := range left {
		for j < len(right) && right[j].Pre() < l.Pre() {
			for len(stack) > 0 && stack[len(stack)-1].Post() < right[j].Pre() {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, right[j])
			j++
		}
		for len(stack) > 0 && stack[len(stack)-1].Post() < l.Pre() {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			// The top is open at l.Pre() and started strictly before it,
			// so it is a proper ancestor.
			out = append(out, l)
		}
	}
	return out
}

// diff returns left minus right over pre-sorted inputs. O(|L|+|R|).
func diff(left, right []*dirtree.Entry) []*dirtree.Entry {
	if len(right) == 0 {
		return left
	}
	var out []*dirtree.Entry
	j := 0
	for _, l := range left {
		for j < len(right) && right[j].Pre() < l.Pre() {
			j++
		}
		if j < len(right) && right[j] == l {
			continue
		}
		out = append(out, l)
	}
	return out
}

package hquery

import "fmt"

// Concurrency contract
//
// A Binding is a small immutable value, and query evaluation never writes
// to it, so one Binding may be shared by any number of goroutines — with
// one caveat. Eval lazily (re)computes the underlying directory's
// interval encoding via EnsureEncoded, which mutates the directory the
// first time it runs after a mutation. Concurrent Evals against a stale
// encoding therefore race on that internal state.
//
// The rule is: bring the encoding current, single-threaded, before
// fanning out (dirtree.Directory.EnsureEncoded), and do not mutate any
// bound directory while evaluations are in flight. Once the encoding is
// current, Eval's EnsureEncoded call is a pure epoch comparison and every
// evaluation path is read-only. AuditReadOnly checks the precondition.

// AuditReadOnly reports whether concurrent query evaluation against the
// binding would be free of internal directory mutation: every bound
// view's directory must exist and have a current interval encoding. A nil
// return means Eval is read-only for this binding until the next
// directory mutation.
func AuditReadOnly(b Binding) error {
	for _, tag := range [...]struct {
		name string
		inst Inst
	}{{"default", InstDefault}, {"delta", InstDelta}, {"base", InstBase}, {"full", InstFull}} {
		d := b.view(tag.inst).Directory()
		if d == nil {
			return fmt.Errorf("hquery: binding's %s view is unbound", tag.name)
		}
		if !d.Encoded() {
			return fmt.Errorf("hquery: binding's %s view has a stale interval encoding; call EnsureEncoded before concurrent evaluation", tag.name)
		}
	}
	return nil
}

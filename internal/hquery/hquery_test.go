package hquery

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"boundschema/internal/dirtree"
	"boundschema/internal/filter"
)

// buildWhitePages constructs the paper's Figure 1 instance.
func buildWhitePages(t testing.TB) *dirtree.Directory {
	d := dirtree.New(dirtree.NewRegistry())
	att, err := d.AddRoot("o=att", "organization", "orgGroup", "online", "top")
	if err != nil {
		t.Fatal(err)
	}
	labs, _ := d.AddChild(att, "ou=attLabs", "orgUnit", "orgGroup", "top")
	_, _ = d.AddChild(labs, "uid=armstrong", "staffMember", "person", "top")
	db, _ := d.AddChild(labs, "ou=databases", "orgUnit", "orgGroup", "top")
	laks, _ := d.AddChild(db, "uid=laks", "researcher", "facultyMember", "person", "online", "top")
	laks.AddValue("mail", dirtree.String("laks@cs.concordia.ca"))
	_, _ = d.AddChild(db, "uid=suciu", "researcher", "person", "top")
	return d
}

func dns(es []*dirtree.Entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.RDN()
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSelect(t *testing.T) {
	d := buildWhitePages(t)
	got := dns(Eval(ClassAtom("person"), NewBinding(d)))
	want := []string{"uid=armstrong", "uid=laks", "uid=suciu"}
	if !equalStrings(got, want) {
		t.Errorf("persons = %v, want %v", got, want)
	}
	got = dns(Eval(Select(filter.MustParse("(&(objectClass=person)(mail=*))")), NewBinding(d)))
	if !equalStrings(got, []string{"uid=laks"}) {
		t.Errorf("persons with mail = %v", got)
	}
	got = dns(Eval(Select(filter.MustParse("(mail=*concordia*)")), NewBinding(d)))
	if !equalStrings(got, []string{"uid=laks"}) {
		t.Errorf("substring scan = %v", got)
	}
}

func TestChildParent(t *testing.T) {
	d := buildWhitePages(t)
	b := NewBinding(d)
	// orgGroups with an orgUnit child: att and attLabs.
	got := dns(Eval(Child(ClassAtom("orgGroup"), ClassAtom("orgUnit")), b))
	if !equalStrings(got, []string{"o=att", "ou=attLabs"}) {
		t.Errorf("child join = %v", got)
	}
	// persons whose parent is an orgUnit: all three.
	got = dns(Eval(Parent(ClassAtom("person"), ClassAtom("orgUnit")), b))
	if !equalStrings(got, []string{"uid=armstrong", "uid=laks", "uid=suciu"}) {
		t.Errorf("parent join = %v", got)
	}
	// persons whose parent is an organization: none.
	if !Empty(Parent(ClassAtom("person"), ClassAtom("organization")), b) {
		t.Errorf("no person should sit directly under the organization")
	}
}

func TestDescAnc(t *testing.T) {
	d := buildWhitePages(t)
	b := NewBinding(d)
	// orgGroups with a person descendant: all three orgGroups.
	got := dns(Eval(Desc(ClassAtom("orgGroup"), ClassAtom("person")), b))
	if !equalStrings(got, []string{"o=att", "ou=attLabs", "ou=databases"}) {
		t.Errorf("desc join = %v", got)
	}
	// entries with an online ancestor: everything under o=att.
	got = dns(Eval(Anc(ClassAtom("top"), ClassAtom("online")), b))
	if !equalStrings(got, []string{"ou=attLabs", "uid=armstrong", "ou=databases", "uid=laks", "uid=suciu"}) {
		t.Errorf("anc join = %v", got)
	}
	// Proper ancestry: laks has the online ancestor o=att, but o=att has
	// no online ancestor (it is not its own ancestor).
	got = dns(Eval(Anc(ClassAtom("online"), ClassAtom("online")), b))
	if !equalStrings(got, []string{"uid=laks"}) {
		t.Errorf("anc(online, online) = %v, want [uid=laks]", got)
	}
	got = dns(Eval(Desc(ClassAtom("online"), ClassAtom("online")), b))
	if !equalStrings(got, []string{"o=att"}) {
		t.Errorf("desc(online, online) = %v, want [o=att]", got)
	}
}

func TestMinus(t *testing.T) {
	d := buildWhitePages(t)
	b := NewBinding(d)
	// persons that are not researchers: armstrong.
	got := dns(Eval(Minus(ClassAtom("person"), ClassAtom("researcher")), b))
	if !equalStrings(got, []string{"uid=armstrong"}) {
		t.Errorf("minus = %v", got)
	}
}

// TestPaperQ1Q2Q3 replays the three queries worked out in Section 3.2.
func TestPaperQ1Q2Q3(t *testing.T) {
	d := buildWhitePages(t)
	b := NewBinding(d)

	// Q1: orgGroups without a person descendant — must be empty on the
	// legal Figure 1 instance.
	q1 := Minus(ClassAtom("orgGroup"), Desc(ClassAtom("orgGroup"), ClassAtom("person")))
	if !Empty(q1, b) {
		t.Errorf("Q1 should be empty on the legal instance: %v", dns(Eval(q1, b)))
	}

	// Q2: persons with a child of class top (i.e. any child) — empty.
	q2 := Child(ClassAtom("person"), ClassAtom("top"))
	if !Empty(q2, b) {
		t.Errorf("Q2 should be empty: %v", dns(Eval(q2, b)))
	}

	// Q3: (objectClass=orgUnit) — non-empty.
	if Empty(ClassAtom("orgUnit"), b) {
		t.Errorf("Q3 should be non-empty")
	}

	// Break the instance: a person acquires a child; Q2 must now find it.
	laks := d.ByDN("uid=laks,ou=databases,ou=attLabs,o=att")
	if _, err := d.AddChild(laks, "cn=gadget", "top"); err != nil {
		t.Fatal(err)
	}
	if Empty(q2, NewBinding(d)) {
		t.Errorf("Q2 should be non-empty after giving a person a child")
	}
}

func TestInstanceTags(t *testing.T) {
	d := buildWhitePages(t)
	db := d.ByDN("ou=databases,ou=attLabs,o=att")
	b := DeltaBinding(d, db)

	if got := len(Eval(ClassAtomOn("person", InstDelta), b)); got != 2 {
		t.Errorf("persons in delta = %d, want 2", got)
	}
	if got := len(Eval(ClassAtomOn("person", InstBase), b)); got != 1 {
		t.Errorf("persons in base = %d, want 1", got)
	}
	if got := len(Eval(ClassAtomOn("person", InstFull), b)); got != 3 {
		t.Errorf("persons in full = %d, want 3", got)
	}
	if got := len(Eval(ClassAtomOn("person", InstEmpty), b)); got != 0 {
		t.Errorf("persons in empty = %d, want 0", got)
	}
	// Mixed-instance join: delta persons whose parent is in full.
	q := Parent(ClassAtomOn("person", InstDelta), ClassAtomOn("orgUnit", InstFull))
	if got := len(Eval(q, b)); got != 2 {
		t.Errorf("mixed-instance parent join = %d, want 2", got)
	}
}

func TestSize(t *testing.T) {
	q := Minus(ClassAtom("a"), Desc(ClassAtom("a"), ClassAtom("b")))
	if got := q.Size(); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"(select (objectClass=person))",
		"(select (objectClass=person) @delta)",
		"(select (objectClass=person) @base)",
		"(select (objectClass=person) @full)",
		"(select (objectClass=person) @0)",
		"(select (&(objectClass=person)(mail=*)))",
		"(child (select (objectClass=a)) (select (objectClass=b)))",
		"(parent (select (objectClass=a)) (select (objectClass=b)))",
		"(desc (select (objectClass=a)) (select (objectClass=b)))",
		"(anc (select (objectClass=a)) (select (objectClass=b)))",
		"(minus (select (objectClass=orgGroup)) (desc (select (objectClass=orgGroup)) (select (objectClass=person))))",
	}
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		again, err := Parse(String(q))
		if err != nil {
			t.Errorf("reparse of %q: %v", String(q), err)
			continue
		}
		if String(again) != String(q) {
			t.Errorf("round trip unstable: %q -> %q", String(q), String(again))
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select (a=b)",
		"(select)",
		"(select (a=b) @nowhere)",
		"(frobnicate (select (a=b)) (select (c=d)))",
		"(child (select (a=b)))",
		"(child (select (a=b)) (select (c=d)) (select (e=f)))",
		"(select (a=b)) trailing",
		"(select (a=b",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// ---------------------------------------------------------------------
// Differential testing against a naive quadratic evaluator.

func naiveEval(q Query, b Binding) map[*dirtree.Entry]bool {
	switch t := q.(type) {
	case selectQ:
		out := make(map[*dirtree.Entry]bool)
		for _, e := range b.view(t.inst).Entries() {
			if t.f.Matches(e) {
				out[e] = true
			}
		}
		return out
	case binQ:
		left := naiveEval(t.left, b)
		right := naiveEval(t.right, b)
		out := make(map[*dirtree.Entry]bool)
		for l := range left {
			switch t.kind {
			case opChild:
				for _, c := range l.Children() {
					if right[c] {
						out[l] = true
						break
					}
				}
			case opParent:
				if p := l.Parent(); p != nil && right[p] {
					out[l] = true
				}
			case opDesc:
				var walk func(e *dirtree.Entry) bool
				walk = func(e *dirtree.Entry) bool {
					for _, c := range e.Children() {
						if right[c] || walk(c) {
							return true
						}
					}
					return false
				}
				if walk(l) {
					out[l] = true
				}
			case opAnc:
				for p := l.Parent(); p != nil; p = p.Parent() {
					if right[p] {
						out[l] = true
						break
					}
				}
			case opMinus:
				if !right[l] {
					out[l] = true
				}
			}
		}
		return out
	}
	return nil
}

func randomForest(rng *rand.Rand, n int) *dirtree.Directory {
	d := dirtree.New(nil)
	classes := []string{"a", "b", "c"}
	var all []*dirtree.Entry
	for i := 0; i < n; i++ {
		cs := []string{"top"}
		for _, c := range classes {
			if rng.Intn(3) == 0 {
				cs = append(cs, c)
			}
		}
		var e *dirtree.Entry
		if len(all) == 0 || rng.Intn(6) == 0 {
			e, _ = d.AddRoot("r="+strconv.Itoa(i), cs...)
		} else {
			e, _ = d.AddChild(all[rng.Intn(len(all))], "n="+strconv.Itoa(i), cs...)
		}
		all = append(all, e)
	}
	return d
}

func randomQuery(rng *rand.Rand, depth int) Query {
	classes := []string{"a", "b", "c", "top"}
	if depth <= 0 || rng.Intn(3) == 0 {
		insts := []Inst{InstDefault, InstDelta, InstBase, InstFull, InstEmpty}
		return ClassAtomOn(classes[rng.Intn(len(classes))], insts[rng.Intn(len(insts))])
	}
	l := randomQuery(rng, depth-1)
	r := randomQuery(rng, depth-1)
	switch rng.Intn(5) {
	case 0:
		return Child(l, r)
	case 1:
		return Parent(l, r)
	case 2:
		return Desc(l, r)
	case 3:
		return Anc(l, r)
	default:
		return Minus(l, r)
	}
}

// Property: the merge/hash-join evaluator agrees with the naive evaluator
// on random forests, random queries, and random delta bindings.
func TestQuickEvalMatchesNaive(t *testing.T) {
	f := func(seed int64, size uint8, qdepth uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomForest(rng, int(size%60)+3)
		ents := d.Entries()
		b := DeltaBinding(d, ents[rng.Intn(len(ents))])
		q := randomQuery(rng, int(qdepth%4))
		fast := Eval(q, b)
		slow := naiveEval(q, b)
		if len(fast) != len(slow) {
			t.Logf("query %s: fast %d, slow %d", String(q), len(fast), len(slow))
			return false
		}
		prev := -1
		for _, e := range fast {
			if !slow[e] {
				return false
			}
			if e.Pre() <= prev {
				t.Logf("query %s: result not pre-sorted", String(q))
				return false
			}
			prev = e.Pre()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: evaluation over the delta and base views partitions the
// evaluation over the full view for any atomic selection.
func TestQuickSelectViewPartition(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomForest(rng, int(size%60)+3)
		ents := d.Entries()
		b := DeltaBinding(d, ents[rng.Intn(len(ents))])
		for _, c := range []string{"a", "b", "top"} {
			nd := len(Eval(ClassAtomOn(c, InstDelta), b))
			nb := len(Eval(ClassAtomOn(c, InstBase), b))
			nf := len(Eval(ClassAtomOn(c, InstFull), b))
			if nd+nb != nf {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSkewedFastPaths forces the probe-based evaluation paths (small
// operand vs large atomic operand) and compares them against the naive
// evaluator.
func TestSkewedFastPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := dirtree.New(nil)
	var all []*dirtree.Entry
	for i := 0; i < 4000; i++ {
		cs := []string{"top", "common"}
		if rng.Intn(400) == 0 {
			cs = append(cs, "rare")
		}
		var e *dirtree.Entry
		if len(all) == 0 {
			e, _ = d.AddRoot("r=0", cs...)
		} else {
			e, _ = d.AddChild(all[rng.Intn(len(all))], "n="+strconv.Itoa(i), cs...)
		}
		all = append(all, e)
	}
	b := NewBinding(d)
	queries := []Query{
		Parent(ClassAtom("rare"), ClassAtom("common")), // probeParent
		Anc(ClassAtom("rare"), ClassAtom("common")),    // probeAnc
		Child(ClassAtom("common"), ClassAtom("rare")),  // probeChild
		Desc(ClassAtom("common"), ClassAtom("rare")),   // probeDesc
		Desc(ClassAtom("top"), ClassAtom("rare")),
		Child(ClassAtom("top"), ClassAtom("rare")),
	}
	for _, q := range queries {
		fast := Eval(q, b)
		slow := naiveEval(q, b)
		if len(fast) != len(slow) {
			t.Errorf("%s: fast %d, slow %d", String(q), len(fast), len(slow))
			continue
		}
		prev := -1
		for _, e := range fast {
			if !slow[e] {
				t.Errorf("%s: spurious result %s", String(q), e.DN())
			}
			if e.Pre() <= prev {
				t.Errorf("%s: result not pre-sorted", String(q))
			}
			prev = e.Pre()
		}
	}
}

func TestEvalWithStats(t *testing.T) {
	d := buildWhitePages(t)
	q := Minus(ClassAtom("orgGroup"), Desc(ClassAtom("orgGroup"), ClassAtom("person")))
	out, st := EvalWithStats(q, NewBinding(d))
	if len(out) != 0 {
		t.Fatalf("Q1 should be empty on the legal instance")
	}
	if len(st.Nodes) != 5 {
		t.Fatalf("stats nodes = %d, want 5", len(st.Nodes))
	}
	// The fast evaluator must agree with the instrumented one.
	fast := Eval(q, NewBinding(d))
	if len(fast) != len(out) {
		t.Errorf("instrumented eval disagrees with Eval")
	}
	if st.TotalWork() == 0 {
		t.Errorf("work accounting is zero")
	}
	s := st.String()
	for _, want := range []string{"minus", "desc", "posting-list", "out="} {
		if !strings.Contains(s, want) {
			t.Errorf("stats rendering missing %q:\n%s", want, s)
		}
	}
	// Root comes first, atoms come indented below.
	if !strings.HasPrefix(s, "minus") {
		t.Errorf("root not first:\n%s", s)
	}
}

// Property: instrumented evaluation matches the fast evaluator on random
// queries and bindings.
func TestQuickStatsEvalMatchesFast(t *testing.T) {
	f := func(seed int64, size, qdepth uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randomForest(rng, int(size%50)+3)
		ents := d.Entries()
		b := DeltaBinding(d, ents[rng.Intn(len(ents))])
		q := randomQuery(rng, int(qdepth%3))
		fast := Eval(q, b)
		slow, st := EvalWithStats(q, b)
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return len(st.Nodes) == q.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

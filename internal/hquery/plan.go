package hquery

// Cost-based access-path selection for σ(filter) nodes.
//
// Theorem 3.1 budgets O(|Q|·|D|) for a whole query, but before this file
// every non-class atom spent the full |D| on its own: selectQ.eval either
// read a class posting list or scanned the view. The paper's closing
// remark — "query optimization is facilitated using schema" (§7) — is
// realized here: the registry's typing τ turns filter text into typed
// probe keys, and the attribute-value B+trees (dirtree/attrindex.go)
// answer equality, one-sided range, presence and text-prefix probes with
// exact O(log n) cardinalities, so the planner chooses among
//
//   - a class posting list (the classic path, now picking the *smallest*
//     list when a conjunction names several classes),
//   - an index probe on one conjunct (equality, >=/<=, substring initial
//     prefix, presence),
//   - a plain view scan,
//
// whichever touches the fewest entries, applying the remaining conjuncts
// as a residual filter. Because the probes implement exactly the typed
// comparison semantics of filter.Compare (including cross-type ordering
// and the raw-string fallback, which is simply not index-servable), the
// chosen path is an equivalence, never an approximation — the
// differential oracle in the server tests holds index-backed SEARCH
// byte-identical to scans.

import (
	"boundschema/internal/dirtree"
	"boundschema/internal/filter"
)

// Strategy names, as rendered by EXPLAIN (Stats) and the Plan type.
const (
	stratScan    = "scan"
	stratClass   = "posting-list"
	stratEq      = "index-eq"
	stratRange   = "index-range"
	stratPrefix  = "index-prefix"
	stratPresent = "index-present"
	stratEmpty   = "empty"
)

// sPlan is the chosen access path for one σ(filter) node.
type sPlan struct {
	strategy string
	class    string         // stratClass: posting list to read
	attr     string         // index paths: attribute probed
	eq       dirtree.Value  // stratEq: typed probe key
	lo, hi   *dirtree.Value // stratRange bounds; nil = unbounded
	prefix   string         // stratPrefix: initial text
	residual filter.Filter  // applied over the candidates; nil = exact
	est      int            // candidates the path fetches (exact rank counts)
	scanCost int            // entries a plain scan of the view would touch
}

// planSelect chooses the cheapest access path for σ(f) over the view.
// Estimates for index paths are global rank-query counts (not clipped to
// the view), so they are upper bounds; the scan baseline is the view
// length.
func planSelect(f filter.Filter, v dirtree.View) sPlan {
	scanCost := v.Len()
	best := sPlan{strategy: stratScan, residual: f, est: scanCost, scanCost: scanCost}
	conjuncts, isAnd := []filter.Filter{f}, false
	if and, ok := f.(filter.And); ok {
		conjuncts, isAnd = and, true
	}
	for i, sub := range conjuncts {
		cand, ok := atomPath(sub, v)
		if !ok {
			continue
		}
		cand.scanCost = scanCost
		if cand.strategy == stratEmpty {
			// One conjunct can match nothing; the whole σ is empty.
			return cand
		}
		if cand.est < best.est {
			if cand.residual == nil { // keepAtom paths preset it to sub
				cand.residual = conjunctsExcept(conjuncts, i, isAnd)
			} else if isAnd {
				cand.residual = f
			}
			best = cand
		}
	}
	return best
}

// atomPath proposes an access path serving one conjunct exactly, or
// reports that the conjunct is not index-servable. A non-nil residual on
// the result means the path over-approximates the conjunct and the atom
// itself must re-run over the candidates (substring with inner/final
// parts).
func atomPath(sub filter.Filter, v dirtree.View) (sPlan, bool) {
	d := v.Directory()
	switch t := sub.(type) {
	case filter.Compare:
		if t.Attr == dirtree.AttrObjectClass {
			// objectClass values are synthesized from the class set; only
			// the class posting lists index them.
			if t.Op == filter.OpEqual {
				return sPlan{strategy: stratClass, class: t.Value, est: len(v.ClassEntries(t.Value))}, true
			}
			return sPlan{}, false
		}
		reg := d.Registry()
		switch t.Op {
		case filter.OpEqual:
			want, err := dirtree.ParseValue(reg.Type(t.Attr), t.Value)
			if err != nil {
				// Equality falls back to raw string comparison on parse
				// errors (filter.Compare); the typed tree cannot serve
				// that.
				return sPlan{}, false
			}
			return sPlan{strategy: stratEq, attr: t.Attr, eq: want, est: d.ValueCount(t.Attr, want)}, true
		case filter.OpGE, filter.OpLE:
			want, err := dirtree.ParseValue(reg.Type(t.Attr), t.Value)
			if err != nil {
				// Range atoms match nothing on a parse error, so the
				// conjunction is statically empty.
				return sPlan{strategy: stratEmpty}, true
			}
			p := sPlan{strategy: stratRange, attr: t.Attr}
			if t.Op == filter.OpGE {
				p.lo = &want
			} else {
				p.hi = &want
			}
			p.est = d.ValueRangeCount(t.Attr, p.lo, p.hi)
			return p, true
		case filter.OpPresent:
			return sPlan{strategy: stratPresent, attr: t.Attr, est: d.ValueRangeCount(t.Attr, nil, nil)}, true
		}
		return sPlan{}, false
	case filter.Substring:
		if t.Attr == dirtree.AttrObjectClass || t.Initial == "" {
			return sPlan{}, false
		}
		n, ok := d.ValuePrefixCount(t.Attr, t.Initial)
		if !ok {
			// Some postings are not text-safe (integers, booleans) and
			// byte-range bounds would miss their rendered forms.
			return sPlan{}, false
		}
		p := sPlan{strategy: stratPrefix, attr: t.Attr, prefix: t.Initial, est: n}
		if len(t.Any) > 0 || t.Final != "" {
			p.residual = sub // prefix over-approximates; re-check the atom
		}
		return p, true
	}
	return sPlan{}, false
}

// conjunctsExcept rebuilds the residual filter: every conjunct but the
// one the access path serves. nil when nothing remains.
func conjunctsExcept(conjuncts []filter.Filter, i int, isAnd bool) filter.Filter {
	if !isAnd || len(conjuncts) == 1 {
		return nil
	}
	rest := make(filter.And, 0, len(conjuncts)-1)
	rest = append(rest, conjuncts[:i]...)
	rest = append(rest, conjuncts[i+1:]...)
	return rest
}

// execute runs the planned path over the view. f is the full filter, for
// the defensive scan fallback.
func (p sPlan) execute(f filter.Filter, v dirtree.View) []*dirtree.Entry {
	d := v.Directory()
	var src []*dirtree.Entry
	switch p.strategy {
	case stratEmpty:
		return nil
	case stratScan:
		src = v.Entries()
	case stratClass:
		src = v.ClassEntries(p.class)
	case stratEq:
		src = v.Filter(d.ValueEntries(p.attr, p.eq))
	case stratRange:
		src = v.Filter(d.ValueRangeEntries(p.attr, p.lo, p.hi))
	case stratPresent:
		src = v.Filter(d.ValueRangeEntries(p.attr, nil, nil))
	case stratPrefix:
		ents, ok := d.ValuePrefixEntries(p.attr, p.prefix)
		if !ok {
			// The tree gained non-text keys between plan and execute;
			// cannot happen under the read-only contract, but fall back
			// to an exact scan rather than miss entries.
			p.residual = f
			src = v.Entries()
			break
		}
		src = v.Filter(ents)
	}
	if p.residual == nil {
		return src
	}
	var out []*dirtree.Entry
	for _, e := range src {
		if p.residual.Matches(e) {
			out = append(out, e)
		}
	}
	return out
}

// label renders the strategy for EXPLAIN output, marking residual
// filtering the way the historical "posting-list+filter" did.
func (p sPlan) label() string {
	if p.residual != nil && p.strategy != stratScan {
		return p.strategy + "+filter"
	}
	return p.strategy
}

// Plan describes the access path chosen for a σ(filter) node — the
// EXPLAIN surface for one atom.
type Plan struct {
	// Strategy is one of scan, posting-list, index-eq, index-range,
	// index-prefix, index-present, empty.
	Strategy string
	// Arg is the class (posting-list) or attribute (index paths) probed.
	Arg string
	// Est is the number of candidate entries the path fetches. For index
	// paths this is an exact rank-query count over the whole directory
	// (an upper bound under sub-instance views); for scan it equals
	// ScanCost.
	Est int
	// ScanCost is the number of entries a plain scan of the view would
	// touch — the baseline the chosen path beat.
	ScanCost int
	// Filtered reports whether a residual filter runs over the
	// candidates.
	Filtered bool
}

func (p sPlan) describe() Plan {
	arg := p.attr
	if p.strategy == stratClass {
		arg = p.class
	}
	// A scan applies the whole filter by definition; Filtered flags only
	// residual filtering on top of an index or posting-list probe.
	return Plan{Strategy: p.strategy, Arg: arg, Est: p.est, ScanCost: p.scanCost,
		Filtered: p.residual != nil && p.strategy != stratScan}
}

// PlanSelect plans σ(f) over a view without executing it.
func PlanSelect(f filter.Filter, v dirtree.View) Plan {
	v.Directory().EnsureEncoded()
	return planSelect(f, v).describe()
}

// EvalSelect plans and evaluates σ(f) over a single view, returning the
// matching entries in pre-order together with the chosen plan. It is the
// entry point the server's SEARCH uses.
func EvalSelect(f filter.Filter, v dirtree.View) ([]*dirtree.Entry, Plan) {
	v.Directory().EnsureEncoded()
	if v.IsEmptyView() {
		return nil, Plan{Strategy: stratEmpty}
	}
	p := planSelect(f, v)
	return p.execute(f, v), p.describe()
}

package hquery

import (
	"fmt"
	"strings"

	"boundschema/internal/filter"
)

// Parse reads a query in the s-expression syntax produced by String:
//
//	(select (objectClass=person))
//	(select (objectClass=person) @delta)
//	(minus (select (objectClass=orgGroup))
//	       (desc (select (objectClass=orgGroup)) (select (objectClass=person))))
//
// The instance tags @0, @delta, @base and @full correspond to the Figure 5
// annotations [∅], [Δ], [D] and [D±Δ].
func Parse(src string) (Query, error) {
	p := &qparser{src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, p.errorf("trailing input %q", p.src[p.pos:])
	}
	return q, nil
}

// MustParse is Parse that panics on error, for queries written as program
// literals.
func MustParse(src string) Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type qparser struct {
	src string
	pos int
}

func (p *qparser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("hquery: at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *qparser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *qparser) parseQuery() (Query, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return nil, p.errorf("expected '('")
	}
	p.pos++
	op := p.readWord()
	switch op {
	case "select":
		return p.parseSelect()
	case "child", "parent", "desc", "anc", "minus":
		left, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		right, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.closeParen(); err != nil {
			return nil, err
		}
		switch op {
		case "child":
			return Child(left, right), nil
		case "parent":
			return Parent(left, right), nil
		case "desc":
			return Desc(left, right), nil
		case "anc":
			return Anc(left, right), nil
		default:
			return Minus(left, right), nil
		}
	case "":
		return nil, p.errorf("missing operator")
	default:
		return nil, p.errorf("unknown operator %q", op)
	}
}

func (p *qparser) parseSelect() (Query, error) {
	p.skipSpace()
	ftext, err := p.readBalanced()
	if err != nil {
		return nil, err
	}
	f, err := filter.Parse(ftext)
	if err != nil {
		return nil, err
	}
	inst := InstDefault
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '@' {
		p.pos++
		tag := p.readWord()
		switch tag {
		case "0", "empty":
			inst = InstEmpty
		case "delta":
			inst = InstDelta
		case "base":
			inst = InstBase
		case "full":
			inst = InstFull
		case "D":
			inst = InstDefault
		default:
			return nil, p.errorf("unknown instance tag @%s", tag)
		}
	}
	if err := p.closeParen(); err != nil {
		return nil, err
	}
	return SelectOn(f, inst), nil
}

// readBalanced consumes a balanced parenthesized span (the embedded
// filter), honoring filter escapes.
func (p *qparser) readBalanced() (string, error) {
	if p.pos >= len(p.src) || p.src[p.pos] != '(' {
		return "", p.errorf("expected filter")
	}
	start := p.pos
	depth := 0
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '\\':
			p.pos++ // skip escaped byte marker; hex digits are plain text
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				p.pos++
				return p.src[start:p.pos], nil
			}
		}
		p.pos++
	}
	return "", p.errorf("unbalanced filter starting at %d", start)
}

func (p *qparser) readWord() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune(" \t\n\r()@", rune(p.src[p.pos])) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *qparser) closeParen() error {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != ')' {
		return p.errorf("expected ')'")
	}
	p.pos++
	return nil
}

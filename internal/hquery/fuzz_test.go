package hquery

import "testing"

// FuzzParse checks that the query parser never panics and that accepted
// queries round-trip through String.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"(select (objectClass=person))",
		"(select (objectClass=person) @delta)",
		"(minus (select (a=b)) (desc (select (a=b)) (select (c=d))))",
		"(child (select (a=*)) (anc (select (b=1)) (select (c<=2))))",
		"(select)",
		"(((",
		"(desc (select (a=b)))",
		"(select (a=b) @nowhere)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		text := String(q)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("rendered query does not reparse: %q: %v", text, err)
		}
		if String(q2) != text {
			t.Fatalf("rendering unstable: %q -> %q", text, String(q2))
		}
	})
}

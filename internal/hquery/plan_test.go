package hquery

import (
	"fmt"
	"strings"
	"testing"

	"boundschema/internal/dirtree"
	"boundschema/internal/filter"
)

// buildTypedDir returns a directory with skewed class populations and
// typed attributes, sized so each access path has a clear winner:
// 20 hosts (port TypeInt, name strings), 4 persons, 1 admin.
func buildTypedDir(t testing.TB) *dirtree.Directory {
	t.Helper()
	reg := dirtree.NewRegistry()
	reg.Declare("port", dirtree.TypeInt)
	d := dirtree.New(reg)
	root, err := d.AddRoot("o=net", "organization", "top")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		h, err := d.AddChild(root, fmt.Sprintf("cn=host%02d", i), "host", "top")
		if err != nil {
			t.Fatal(err)
		}
		h.AddValue("port", dirtree.Int(int64(8000+i)))
		h.AddValue("name", dirtree.String(fmt.Sprintf("machine-%02d", i)))
	}
	people, _ := d.AddChild(root, "ou=people", "orgUnit", "top")
	for _, n := range []string{"alice", "albert", "bob", "carol"} {
		p, err := d.AddChild(people, "uid="+n, "person", "top")
		if err != nil {
			t.Fatal(err)
		}
		p.AddValue("name", dirtree.String(n))
	}
	admin, _ := d.AddChild(people, "uid=root", "person", "admin", "top")
	admin.AddValue("name", dirtree.String("administrator"))
	return d
}

// TestPlanStrategies pins the access path the planner chooses for each
// atom shape, including the smallest-posting-list fix: a conjunction
// naming several object classes must read the smallest list, not the
// first one.
func TestPlanStrategies(t *testing.T) {
	d := buildTypedDir(t)
	v := d.All()
	cases := []struct {
		src      string
		strategy string
		arg      string
		filtered bool
	}{
		{"(objectClass=person)", "posting-list", "person", false},
		// First-atom order must not matter: "top" covers everything,
		// "admin" has one entry.
		{"(&(objectClass=top)(objectClass=admin))", "posting-list", "admin", true},
		{"(&(objectClass=admin)(objectClass=top))", "posting-list", "admin", true},
		{"(name=alice)", "index-eq", "name", false},
		{"(port=8003)", "index-eq", "port", false},
		{"(port>=8015)", "index-range", "port", false},
		{"(port<=8003)", "index-range", "port", false},
		{"(name=al*)", "index-prefix", "name", false},
		{"(name=al*e)", "index-prefix", "name", true}, // prefix over-approximates
		{"(name=*ce)", "scan", "", false},             // no initial segment
		{"(port=*)", "index-present", "port", false},
		{"(port>=oops)", "empty", "", false},                // typed range: parse error matches nothing
		{"(&(objectClass=host)(port>=zzz))", "empty", "", false}, // ...and empties the conjunction
		{"(port=oops)", "scan", "", false},                  // equality keeps its string fallback
		{"(name~=alice)", "scan", "", false},
		{"(|(name=alice)(name=bob))", "scan", "", false},
		{"(objectClass=al*)", "scan", "", false},  // objectClass is never in the value trees
		{"(objectClass>=a)", "scan", "", false},
		// Index beats the class posting list when strictly smaller.
		{"(&(objectClass=person)(name=alice))", "index-eq", "name", true},
		// ...but the class list wins against a wide range.
		{"(&(objectClass=admin)(port>=0))", "posting-list", "admin", true},
	}
	for _, c := range cases {
		f := filter.MustParse(c.src)
		p := PlanSelect(f, v)
		if p.Strategy != c.strategy {
			t.Errorf("%s: strategy = %s, want %s", c.src, p.Strategy, c.strategy)
			continue
		}
		if c.arg != "" && p.Arg != c.arg {
			t.Errorf("%s: arg = %q, want %q", c.src, p.Arg, c.arg)
		}
		if p.Filtered != c.filtered {
			t.Errorf("%s: filtered = %v, want %v", c.src, p.Filtered, c.filtered)
		}
		if p.ScanCost != v.Len() && c.strategy != "empty" {
			t.Errorf("%s: scanCost = %d, want %d", c.src, p.ScanCost, v.Len())
		}
		if p.Est > p.ScanCost && c.strategy != "empty" {
			t.Errorf("%s: est %d exceeds the scan baseline %d", c.src, p.Est, p.ScanCost)
		}
	}
}

// TestPlanEquivalence is the hquery-level differential oracle: for every
// filter shape, the planned path must return exactly what a brute-force
// scan returns — over the full instance and over clipped views.
func TestPlanEquivalence(t *testing.T) {
	d := buildTypedDir(t)
	filters := []string{
		"(objectClass=person)",
		"(&(objectClass=top)(objectClass=admin))",
		"(name=alice)",
		"(name=nosuch)",
		"(port=8003)",
		"(port=08003)", // typed equality ignores leading zeros
		"(port>=8010)",
		"(port<=8005)",
		"(&(port>=8005)(port<=8010))",
		"(port>=oops)",
		"(name=al*)",
		"(name=al*e)",
		"(name=ma*ne*)",
		"(name=*ce)",
		"(name=*)",
		"(port=*)",
		"(fax=*)",
		"(name~=ALICE)",
		"(!(objectClass=host))",
		"(|(name=alice)(port<=8002))",
		"(&(objectClass=host)(port>=8018)(name=machine*))",
	}
	var roots []*dirtree.Entry
	for _, e := range d.Entries() {
		if strings.HasPrefix(e.RDN(), "ou=") || strings.HasPrefix(e.RDN(), "o=") {
			roots = append(roots, e)
		}
	}
	views := []dirtree.View{d.All(), d.EmptyView()}
	for _, r := range roots {
		views = append(views, d.SubtreeView(r), d.ExceptSubtreeView(r))
	}
	for _, src := range filters {
		f := filter.MustParse(src)
		for _, v := range views {
			got, _ := EvalSelect(f, v)
			var want []*dirtree.Entry
			for _, e := range v.Entries() {
				if f.Matches(e) {
					want = append(want, e)
				}
			}
			if len(got) != len(want) {
				t.Errorf("%s over %s: got %d entries, want %d", src, v, len(got), len(want))
				continue
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("%s over %s: entry %d = %s, want %s", src, v, i, got[i].DN(), want[i].DN())
					break
				}
			}
		}
	}
}

// TestPlanAfterMutation re-plans after updates flow through the
// incremental index maintenance: new values must be found, removed
// values must disappear, and estimates must track the tree.
func TestPlanAfterMutation(t *testing.T) {
	d := buildTypedDir(t)
	v := d.All()
	f := filter.MustParse("(name=zed)")
	if got, p := EvalSelect(f, v); len(got) != 0 || p.Strategy != "index-eq" {
		t.Fatalf("before insert: %d entries via %s", len(got), p.Strategy)
	}
	people := d.Entries()[21] // ou=people
	if people.RDN() != "ou=people" {
		t.Fatalf("layout changed: entry 21 is %s", people.RDN())
	}
	z, err := d.AddChild(people, "uid=zed", "person", "top")
	if err != nil {
		t.Fatal(err)
	}
	z.AddValue("name", dirtree.String("zed"))
	got, p := EvalSelect(f, d.All())
	if len(got) != 1 || got[0] != z || p.Est != 1 {
		t.Fatalf("after insert: %d entries, est %d", len(got), p.Est)
	}
	z.RemoveValue("name", dirtree.String("zed"))
	if got, _ := EvalSelect(f, d.All()); len(got) != 0 {
		t.Fatalf("after remove: still %d entries", len(got))
	}
}

// TestStatsPlannerLabels checks the EXPLAIN surface: instrumented runs
// report the planner's strategy and estimate per atom.
func TestStatsPlannerLabels(t *testing.T) {
	d := buildTypedDir(t)
	b := NewBinding(d)
	q := Parent(Select(filter.MustParse("(name=alice)")), ClassAtom("orgUnit"))
	out, st := EvalWithStats(q, b)
	if len(out) != 1 || out[0].RDN() != "uid=alice" {
		t.Fatalf("result = %v", dns(out))
	}
	if len(st.Nodes) != 3 {
		t.Fatalf("node count = %d", len(st.Nodes))
	}
	if st.Nodes[0].Strategy != "index-eq" || st.Nodes[0].Est != 1 {
		t.Errorf("atom 0: strategy %s est %d, want index-eq est 1", st.Nodes[0].Strategy, st.Nodes[0].Est)
	}
	if st.Nodes[1].Strategy != "posting-list" {
		t.Errorf("atom 1: strategy %s, want posting-list", st.Nodes[1].Strategy)
	}
	rendered := st.String()
	for _, want := range []string{"index-eq", "posting-list", "est=", "out="} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered stats missing %q:\n%s", want, rendered)
		}
	}
}

package hquery

import (
	"fmt"
	"strings"

	"boundschema/internal/dirtree"
)

// NodeStats records one operator's evaluation during an instrumented run.
type NodeStats struct {
	// Op is the operator name (select/child/parent/desc/anc/minus).
	Op string
	// Detail renders the node (filter text for atoms).
	Detail string
	// Left and Right are the operand result sizes (Right is -1 for
	// atoms, and -1 for Left when a probe path skipped materializing an
	// atom operand).
	Left, Right int
	// Out is the node's result size.
	Out int
	// Strategy names the access path or join strategy. Atoms report the
	// planner's choice (scan, posting-list, index-eq, index-range,
	// index-prefix, index-present, empty, with a "+filter" suffix when a
	// residual filter runs); joins report hash, merge, staircase, diff.
	Strategy string
	// Est is the planner's cardinality estimate for atoms (the number of
	// candidate entries the chosen access path fetches); 0 for joins.
	Est int
	// Depth is the node's depth in the query tree, for rendering.
	Depth int
	// children indexes into Stats.Nodes, for rendering.
	children []int
}

// Stats collects per-node statistics in evaluation (post-order) order.
type Stats struct {
	Nodes []NodeStats
}

// String renders the statistics as an EXPLAIN-style tree, root first.
func (s *Stats) String() string {
	var b strings.Builder
	if len(s.Nodes) == 0 {
		return ""
	}
	var render func(i int)
	render = func(i int) {
		n := s.Nodes[i]
		fmt.Fprintf(&b, "%s%-8s %-14s out=%-8d", strings.Repeat("  ", n.Depth), n.Op, n.Strategy, n.Out)
		if n.Right >= 0 {
			fmt.Fprintf(&b, " left=%-8d right=%-8d", n.Left, n.Right)
		} else {
			fmt.Fprintf(&b, " est=%-8d", n.Est)
		}
		if n.Detail != "" {
			fmt.Fprintf(&b, " %s", n.Detail)
		}
		b.WriteByte('\n')
		for _, c := range n.children {
			render(c)
		}
	}
	render(len(s.Nodes) - 1) // the root is appended last (post-order)
	return b.String()
}

// TotalWork returns the sum of operand sizes touched, the |Q|·|D| work
// measure of Theorem 3.1.
func (s *Stats) TotalWork() int {
	total := 0
	for _, n := range s.Nodes {
		if n.Left > 0 {
			total += n.Left
		}
		if n.Right > 0 {
			total += n.Right
		}
		if n.Right < 0 && n.Left < 0 {
			total += n.Out // atoms
		}
	}
	return total
}

// EvalWithStats evaluates the query and reports per-operator statistics.
// It uses the plain (non-probe) evaluation strategies so the reported
// operand sizes reflect the textbook merge joins; use Eval for the
// fastest path.
func EvalWithStats(q Query, b Binding) ([]*dirtree.Entry, *Stats) {
	b.Default.Directory().EnsureEncoded()
	st := &Stats{}
	out := evalStats(q, b, st, 0)
	return out, st
}

func evalStats(q Query, b Binding, st *Stats, depth int) []*dirtree.Entry {
	switch t := q.(type) {
	case selectQ:
		v := b.view(t.inst)
		var out []*dirtree.Entry
		strategy, est := stratEmpty, 0
		if !v.IsEmptyView() {
			p := planSelect(t.f, v)
			out = p.execute(t.f, v)
			strategy, est = p.label(), p.est
		}
		st.Nodes = append(st.Nodes, NodeStats{
			Op: "select", Detail: t.f.String() + instSuffix(t.inst),
			Left: -1, Right: -1, Out: len(out), Strategy: strategy, Est: est,
			Depth: depth,
		})
		return out

	case binQ:
		left := evalStats(t.left, b, st, depth+1)
		leftIdx := len(st.Nodes) - 1
		right := evalStats(t.right, b, st, depth+1)
		rightIdx := len(st.Nodes) - 1
		var out []*dirtree.Entry
		var strategy string
		switch t.kind {
		case opChild:
			out, strategy = joinChild(left, right), "hash-parents"
		case opParent:
			out, strategy = joinParent(left, right), "hash"
		case opDesc:
			out, strategy = joinDesc(left, right), "merge"
		case opAnc:
			out, strategy = joinAnc(left, right), "staircase"
		case opMinus:
			out, strategy = diff(left, right), "diff"
		}
		st.Nodes = append(st.Nodes, NodeStats{
			Op: opNames[t.kind], Left: len(left), Right: len(right),
			Out: len(out), Strategy: strategy, Depth: depth,
			children: []int{leftIdx, rightIdx},
		})
		return out
	}
	return nil
}

func instSuffix(i Inst) string {
	if i == InstDefault {
		return ""
	}
	return " @" + i.String()
}

// Benchmarks regenerating the paper's complexity claims, one group per
// experiment of the DESIGN.md index. Run with:
//
//	go test -bench=. -benchmem
//
// E3  BenchmarkLegality*      — Theorem 3.1: linear full legality checks
// E4  BenchmarkStructure*     — naive quadratic baseline vs Figure 4 queries
// E6  BenchmarkInsertCheck*   — Figure 5 incremental vs full insert checks
// E6  BenchmarkDeleteCheck*   — Figure 5 deletion rows, narrowed extension
// E7  BenchmarkRequiredClass* — Section 4 count-index remark
// E9  BenchmarkConsistency*   — Theorem 5.2 polynomial decision
//
// plus substrate microbenchmarks (queries, filters, LDIF, applier).
package boundschema_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"boundschema"
	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/filter"
	"boundschema/internal/hquery"
	"boundschema/internal/ldif"
	"boundschema/internal/txn"
	"boundschema/internal/workload"
)

var corpusCache = map[int]*dirtree.Directory{}

func corpus(b *testing.B, n int) (*core.Schema, *dirtree.Directory) {
	b.Helper()
	s := workload.WhitePagesSchema()
	d, ok := corpusCache[n]
	if !ok {
		d = workload.Corpus(s, rand.New(rand.NewSource(7)), n)
		d.EnsureEncoded()
		corpusCache[n] = d
	}
	return s, d
}

// ---------------------------------------------------------------------
// E3 — Theorem 3.1.

func BenchmarkLegalityFull(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, d := corpus(b, n)
			checker := core.NewChecker(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !checker.Check(d).Legal() {
					b.Fatal("corpus must be legal")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/entry")
		})
	}
}

// BenchmarkCheckParallel measures the sharded legality engine
// (internal/core/parallel.go) against the sequential reference on a
// 50k-entry corpus. workers=1 is the baseline; on a machine with
// GOMAXPROCS ≥ 4 the workers=4 case should be ≥2x faster. Every
// parallel run is cross-checked for report byte-identity once before
// timing.
func BenchmarkCheckParallel(b *testing.B) {
	s, d := corpus(b, 50000)
	seq := core.NewChecker(s)
	seq.Concurrency = 1
	ref := seq.Check(d).String()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			checker := core.NewChecker(s)
			checker.Concurrency = workers
			if got := checker.Check(d).String(); got != ref {
				b.Fatal("parallel report diverges from the sequential reference")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !checker.Check(d).Legal() {
					b.Fatal("corpus must be legal")
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(d.Len()), "ns/entry")
		})
	}
}

func BenchmarkLegalityContentOnly(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, d := corpus(b, n)
			checker := core.NewChecker(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !checker.CheckContent(d).Legal() {
					b.Fatal("corpus must be content-legal")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// E4 — naive quadratic baseline vs the query reduction.

func BenchmarkStructureQueryBased(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, d := corpus(b, n)
			checker := core.NewChecker(s)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				checker.CheckStructure(d)
			}
		})
	}
}

func BenchmarkStructureNaive(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, d := corpus(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.NaiveStructureCheck(s, d)
			}
		})
	}
}

// ---------------------------------------------------------------------
// E6 — Figure 5: incremental insertion checks vs full rechecks, per
// structure element of the white-pages schema.

func insertionFixture(b *testing.B, n int) (*core.Schema, *dirtree.Directory, hquery.Binding) {
	s := workload.WhitePagesSchema()
	rng := rand.New(rand.NewSource(5))
	d := workload.Corpus(s, rng, n)
	frag := workload.UpdateStream(s, rng, 8)
	groups := d.ClassEntries("orgGroup")
	root, err := d.GraftSubtree(groups[len(groups)/2], frag.Roots()[0])
	if err != nil {
		b.Fatal(err)
	}
	d.EnsureEncoded()
	return s, d, hquery.DeltaBinding(d, root)
}

func BenchmarkInsertCheckIncremental(b *testing.B) {
	s, _, bind := insertionFixture(b, 50000)
	checks := core.InsertChecks(s.Structure)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, chk := range checks {
			if !chk.Holds(bind) {
				b.Fatal("fixture insertion must be legal")
			}
		}
	}
}

func BenchmarkInsertCheckFullRecheck(b *testing.B) {
	s, d, _ := insertionFixture(b, 50000)
	checker := core.NewChecker(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !checker.CheckStructure(d).Legal() {
			b.Fatal("fixture insertion must be legal")
		}
	}
}

// BenchmarkInsertCheckByDeltaSize shows the incremental cost scaling with
// |Δ| rather than |D|.
func BenchmarkInsertCheckByDeltaSize(b *testing.B) {
	for _, dsize := range []int{2, 16, 128, 1024} {
		b.Run(fmt.Sprintf("delta=%d", dsize), func(b *testing.B) {
			s := workload.WhitePagesSchema()
			rng := rand.New(rand.NewSource(5))
			d := workload.Corpus(s, rng, 50000)
			frag := workload.UpdateStream(s, rng, dsize)
			groups := d.ClassEntries("orgGroup")
			root, err := d.GraftSubtree(groups[len(groups)/2], frag.Roots()[0])
			if err != nil {
				b.Fatal(err)
			}
			d.EnsureEncoded()
			bind := hquery.DeltaBinding(d, root)
			checks := core.InsertChecks(s.Structure)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, chk := range checks {
					chk.Holds(bind)
				}
			}
		})
	}
}

// Deletion rows: the Figure 5 "N" rows need a survivor recheck; the
// ancestor-narrowed extension avoids it.

func deletionFixture(b *testing.B, n int) (*core.Schema, *dirtree.Directory, *dirtree.Entry) {
	s, d := corpus(b, n)
	units := d.ClassEntries("orgUnit")
	return s, d, units[len(units)/2]
}

func BenchmarkDeleteCheckFig5(b *testing.B) {
	s, d, victim := deletionFixture(b, 50000)
	bind := hquery.DeltaBinding(d, victim)
	checks := core.DeleteChecks(s.Structure)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, chk := range checks {
			chk.Holds(bind)
		}
	}
}

func BenchmarkDeleteCheckNarrowed(b *testing.B) {
	s, d, victim := deletionFixture(b, 50000)
	var rels []core.RequiredRel
	for _, chk := range core.DeleteChecks(s.Structure) {
		if rel, ok := chk.Element.(core.RequiredRel); ok && !chk.Incremental {
			rels = append(rels, rel)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rel := range rels {
			txn.NarrowedDeleteCheck(d, victim, rel)
		}
	}
}

// ---------------------------------------------------------------------
// E7 — required classes under deletion: scan vs count index.

func BenchmarkRequiredClassScan(b *testing.B) {
	s, d, victim := deletionFixture(b, 50000)
	bind := hquery.DeltaBinding(d, victim)
	classes := s.Structure.RequiredClasses()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range classes {
			core.DeleteCheckClass(c).Holds(bind)
		}
	}
}

func BenchmarkRequiredClassCountIndex(b *testing.B) {
	s, d, _ := deletionFixture(b, 50000)
	counts := txn.NewCountIndex(d)
	classes := s.Structure.RequiredClasses()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range classes {
			if counts.Count(c) < 1 {
				b.Fatal("corpus must contain every required class")
			}
		}
	}
}

// ---------------------------------------------------------------------
// E9 — Theorem 5.2: polynomial consistency decision.

func BenchmarkConsistencyRandom(b *testing.B) {
	for _, n := range []int{20, 80, 320} {
		b.Run(fmt.Sprintf("classes=%d", n), func(b *testing.B) {
			s := workload.RandomSchema(rand.New(rand.NewSource(17)), workload.SchemaConfig{
				Classes: n, Required: n, Forbidden: n / 2, RequiredClasses: 3, Deep: true,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.CheckConsistency(s)
			}
		})
	}
}

func BenchmarkConsistencyCyclicFamily(b *testing.B) {
	for _, k := range []int{10, 40, 160} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			s := workload.CyclicSchema(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if core.CheckConsistency(s).Consistent {
					b.Fatal("cyclic family must be inconsistent")
				}
			}
		})
	}
}

func BenchmarkMaterializeWhitePages(b *testing.B) {
	s := workload.WhitePagesSchema()
	for i := 0; i < b.N; i++ {
		if _, err := core.Materialize(s); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Substrate microbenchmarks.

func BenchmarkHQueryDescJoin(b *testing.B) {
	_, d := corpus(b, 50000)
	q := hquery.Desc(hquery.ClassAtom("orgGroup"), hquery.ClassAtom("person"))
	bind := hquery.NewBinding(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hquery.Eval(q, bind)
	}
}

func BenchmarkHQueryFig4Violation(b *testing.B) {
	_, d := corpus(b, 50000)
	q := core.RequiredRelQuery(core.RequiredRel{Source: "orgGroup", Axis: core.AxisDesc, Target: "person"})
	bind := hquery.NewBinding(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !hquery.Empty(q, bind) {
			b.Fatal("corpus must satisfy the element")
		}
	}
}

func BenchmarkFilterMatch(b *testing.B) {
	_, d := corpus(b, 1000)
	f := filter.MustParse("(&(objectClass=person)(|(mail=*)(cellularPhone=*)))")
	ents := d.Entries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Matches(ents[i%len(ents)])
	}
}

func BenchmarkLDIFWrite(b *testing.B) {
	_, d := corpus(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := ldif.WriteDirectory(&buf, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLDIFRead(b *testing.B) {
	s, d := corpus(b, 10000)
	var buf bytes.Buffer
	if err := ldif.WriteDirectory(&buf, d); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ldif.ReadDirectory(bytes.NewReader(data), s.Registry); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplierLegalInsert(b *testing.B) {
	s, d0 := corpus(b, 20000)
	d := d0.Clone()
	app := boundschema.NewApplier(s)
	groups := d.ClassEntries("orgGroup")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parent := groups[i%len(groups)]
		tx := &txn.Transaction{}
		dn := fmt.Sprintf("ou=bench%d,%s", i, parent.DN())
		tx.Add(dn, []string{"orgUnit", "orgGroup", "top"}, nil)
		tx.Add(fmt.Sprintf("uid=benchp%d,%s", i, dn), []string{"person", "top"},
			map[string][]dirtree.Value{"name": {dirtree.String("bench")}})
		r, err := app.Apply(d, tx)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Legal() {
			b.Fatal("insertion must be legal")
		}
	}
}

func BenchmarkEncodeForest(b *testing.B) {
	_, d := corpus(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Force a re-encode by touching and restoring nothing: clone is
		// the honest way to measure the walk.
		d.Clone().EnsureEncoded()
	}
}

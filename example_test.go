package boundschema_test

import (
	"fmt"

	"boundschema"
)

const exampleSchema = `
schema team {
  attribute name: string
  attribute mail: string
  class group extends top { }
  class person extends top {
    aux online
    requires name
  }
  auxclass online { allows mail }
  require class group
  require group descendant person
  forbid person child top
}`

// Example shows the core loop: parse a schema, build an instance, check
// legality.
func Example() {
	schema, name, err := boundschema.ParseSchema(exampleSchema)
	if err != nil {
		panic(err)
	}
	dir := boundschema.NewDirectory(schema.Registry)
	eng, _ := dir.AddRoot("ou=eng", "group", "top")
	ada, _ := dir.AddChild(eng, "uid=ada", "person", "top")
	ada.AddValue("name", boundschema.String("Ada Lovelace"))

	fmt.Println(name, "legal:", boundschema.Check(schema, dir).Legal())
	// Output: team legal: true
}

// ExampleCheck shows a violation report: the person lacks its required
// name attribute.
func ExampleCheck() {
	schema, _, _ := boundschema.ParseSchema(exampleSchema)
	dir := boundschema.NewDirectory(schema.Registry)
	eng, _ := dir.AddRoot("ou=eng", "group", "top")
	dir.AddChild(eng, "uid=anon", "person", "top")

	report := boundschema.Check(schema, dir)
	fmt.Println(report)
	// Output: 1 violation(s)
	//   missing-attribute at uid=anon,ou=eng: class person requires attribute name
}

// ExampleApplier shows atomic rejection: deleting the only person would
// break the lower bound "group descendant person", so nothing happens.
func ExampleApplier() {
	schema, _, _ := boundschema.ParseSchema(exampleSchema)
	dir := boundschema.NewDirectory(schema.Registry)
	eng, _ := dir.AddRoot("ou=eng", "group", "top")
	ada, _ := dir.AddChild(eng, "uid=ada", "person", "top")
	ada.AddValue("name", boundschema.String("Ada"))

	app := boundschema.NewApplier(schema)
	tx := &boundschema.Transaction{}
	tx.Delete("uid=ada,ou=eng")
	report, _ := app.Apply(dir, tx)
	fmt.Println("accepted:", report.Legal(), "entries:", dir.Len())
	// Output: accepted: false entries: 2
}

// ExampleCheckConsistency shows the Section 5 analysis on the paper's
// inconsistent cycle: c1 must exist, every c1 needs a c2 child, every c2
// needs a c1 descendant — no finite instance can satisfy all three.
func ExampleCheckConsistency() {
	schema := boundschema.NewSchema()
	schema.Classes.AddCore("c1", boundschema.ClassTop)
	schema.Classes.AddCore("c2", boundschema.ClassTop)
	schema.Structure.RequireClass("c1")
	schema.Structure.RequireRel("c1", boundschema.AxisChild, "c2")
	schema.Structure.RequireRel("c2", boundschema.AxisDesc, "c1")

	res := boundschema.CheckConsistency(schema)
	fmt.Println("consistent:", res.Consistent)
	// Output: consistent: false
}

// ExampleMaterialize shows constructive consistency: a witness instance
// is built for any consistent schema.
func ExampleMaterialize() {
	schema, _, _ := boundschema.ParseSchema(exampleSchema)
	witness, err := boundschema.Materialize(schema)
	if err != nil {
		panic(err)
	}
	fmt.Println("witness legal:", boundschema.Check(schema, witness).Legal(),
		"entries:", witness.Len())
	// Output: witness legal: true entries: 2
}

// ExamplePlanEvolution classifies schema changes by the revalidation
// they demand (Section 6.2).
func ExamplePlanEvolution() {
	old, _, _ := boundschema.ParseSchema(exampleSchema)
	new := old.Clone()
	new.Attrs.Allow("person", "homePage") // lightweight
	new.Attrs.Require("group", "name")    // needs a content recheck

	plan := boundschema.PlanEvolution(old, new)
	fmt.Println("lightweight:", plan.Lightweight())
	fmt.Print(plan)
	// Output: lightweight: false
	// lightweight      class group now allows attribute name
	// lightweight      class person now allows attribute homePage
	// content-recheck  class group now requires attribute name
}

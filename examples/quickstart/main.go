// Quickstart: define a bounding-schema in the schema language, build a
// small directory through the API, test legality, and see a violation
// report.
package main

import (
	"fmt"
	"log"

	"boundschema"
)

const schemaSrc = `
schema team {
  attribute name: string
  attribute mail: string

  class group extends top { }
  class person extends top {
    aux online
    requires name
  }
  auxclass online {
    allows mail
  }

  require class group
  require group descendant person   // every group employs somebody
  forbid person child top           // people are leaves
}
`

func main() {
	schema, name, err := boundschema.ParseSchema(schemaSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded schema %q\n", name)

	// A consistent schema admits at least one legal instance; the
	// materializer builds a witness.
	res := boundschema.CheckConsistency(schema)
	fmt.Printf("consistent: %v (%d closed facts)\n", res.Consistent, res.Facts)

	// Build an instance.
	dir := boundschema.NewDirectory(schema.Registry)
	eng, err := dir.AddRoot("ou=engineering", "group", "top")
	if err != nil {
		log.Fatal(err)
	}
	ada, err := dir.AddChild(eng, "uid=ada", "person", "online", "top")
	if err != nil {
		log.Fatal(err)
	}
	ada.AddValue("name", boundschema.String("Ada Lovelace"))
	ada.AddValue("mail", boundschema.String("ada@example.org"))

	report := boundschema.Check(schema, dir)
	fmt.Printf("instance legal: %v\n", report.Legal())

	// Break it: remove the required name and add an empty group.
	ada.SetValues("name")
	if _, err := dir.AddRoot("ou=empty", "group", "top"); err != nil {
		log.Fatal(err)
	}
	report = boundschema.Check(schema, dir)
	fmt.Printf("after mutation: legal=%v\n%s\n", report.Legal(), report)
}

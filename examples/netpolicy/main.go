// Netpolicy models a directory-enabled-networks (DEN) style directory —
// the second application domain the paper's introduction motivates:
// network resources and policies stored beside white-pages data, where
// the native LDAP schema cannot "prohibit a person entry from also
// belonging to the auxiliary object class packetRouter" or constrain
// where policies live in the tree. Bounding-schemas can.
package main

import (
	"fmt"
	"log"

	"boundschema"
)

const schemaSrc = `
schema netpolicy {
  attribute name: string
  attribute ipAddress: string
  attribute bandwidth: integer
  attribute action: string
  attribute priority: single integer

  class adminDomain extends top {
    requires name
  }
  class netElement extends top { }
  class host extends netElement {
    aux packetRouter
    requires ipAddress
  }
  class subnet extends netElement {
    requires name
  }
  class policy extends top {
    requires action
    allows priority
  }
  class person extends top {
    requires name
  }
  auxclass packetRouter {
    allows bandwidth
  }

  // Section 6.1: IP addresses are keys — unique across the whole
  // directory, not per class.
  key ipAddress

  require class adminDomain
  // Policies only make sense inside an administrative domain.
  require policy ancestor adminDomain
  // Every subnet contains at least one host.
  require subnet descendant host
  // Hosts are leaves; domains do not nest.
  forbid host child top
  forbid adminDomain descendant adminDomain
  // People never live under network elements.
  forbid netElement descendant person
}
`

func main() {
	schema, _, err := boundschema.ParseSchema(schemaSrc)
	if err != nil {
		log.Fatal(err)
	}
	res := boundschema.CheckConsistency(schema)
	fmt.Printf("netpolicy schema consistent: %v (%d facts)\n", res.Consistent, res.Facts)

	dir := boundschema.NewDirectory(schema.Registry)
	dom := mustAdd(dir, "", "o=backbone", "adminDomain", "top")
	dom.AddValue("name", boundschema.String("backbone"))
	net := mustAdd(dir, "o=backbone", "ou=lab-net", "subnet", "netElement", "top")
	net.AddValue("name", boundschema.String("lab network"))
	h1 := mustAdd(dir, "ou=lab-net,o=backbone", "cn=gw1", "host", "netElement", "packetRouter", "top")
	h1.AddValue("ipAddress", boundschema.String("10.0.0.1"))
	h1.AddValue("bandwidth", boundschema.Int(10_000))
	pol := mustAdd(dir, "o=backbone", "cn=throttle", "policy", "top")
	pol.AddValue("action", boundschema.String("rate-limit"))
	pol.AddValue("priority", boundschema.Int(5))

	fmt.Printf("base instance legal: %v\n", boundschema.Check(schema, dir).Legal())

	// 1. The introduction's example: a person cannot also be a
	// packetRouter — the auxiliary class is not allowed for person.
	person := mustAdd(dir, "o=backbone", "uid=oper", "person", "packetRouter", "top")
	person.AddValue("name", boundschema.String("operator"))
	r := boundschema.Check(schema, dir)
	fmt.Printf("\nperson+packetRouter rejected:\n%s\n", r)
	person.RemoveClass("packetRouter")

	// 2. A policy outside any admin domain breaks the ancestor bound.
	app := boundschema.NewApplier(schema)
	tx := &boundschema.Transaction{}
	tx.Add("cn=stray-policy", []string{"policy", "top"},
		map[string][]boundschema.Value{"action": {boundschema.String("drop")}})
	rep, err := app.Apply(dir, tx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stray policy accepted: %v\n%s\n", rep.Legal(), rep)

	// 3. Hosts are leaves: attaching anything below one is rejected and
	// rolled back.
	tx = &boundschema.Transaction{}
	tx.Add("cn=sub,cn=gw1,ou=lab-net,o=backbone", []string{"netElement", "top"}, nil)
	rep, err = app.Apply(dir, tx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("child under host accepted: %v\n", rep.Legal())

	// 4. Duplicate IP addresses violate the Section 6.1 key.
	h2 := mustAdd(dir, "ou=lab-net,o=backbone", "cn=gw2", "host", "netElement", "top")
	h2.AddValue("ipAddress", boundschema.String("10.0.0.1"))
	r = boundschema.Check(schema, dir)
	fmt.Printf("duplicate IP rejected:\n%s\n\n", r)
	h2.SetValues("ipAddress", boundschema.String("10.0.0.2"))

	// 5. Single-valued priority (the Section 6.1 numeric restriction).
	pol.AddValue("priority", boundschema.Int(9))
	r = boundschema.Check(schema, dir)
	fmt.Printf("\ndouble priority rejected:\n%s\n", r)
	pol.SetValues("priority", boundschema.Int(5))

	fmt.Printf("final instance legal: %v (%d entries)\n",
		boundschema.Check(schema, dir).Legal(), dir.Len())
}

func mustAdd(d *boundschema.Directory, parentDN, rdn string, classes ...string) *boundschema.Entry {
	var e *boundschema.Entry
	var err error
	if parentDN == "" {
		e, err = d.AddRoot(rdn, classes...)
	} else {
		parent := d.ByDN(parentDN)
		if parent == nil {
			log.Fatalf("no parent %s", parentDN)
		}
		e, err = d.AddChild(parent, rdn, classes...)
	}
	if err != nil {
		log.Fatal(err)
	}
	return e
}

// Whitepages walks through the paper's running example end to end: the
// Figure 1 corporate white-pages instance against the Figure 2/3
// bounding-schema, the Section 3 legality tests, the Section 4.2 update
// scenarios with incremental checking and rollback, and the Section 5
// consistency analysis.
package main

import (
	"bytes"
	"fmt"
	"log"

	"boundschema"
	"boundschema/internal/workload"
)

func main() {
	schema := workload.WhitePagesSchema()
	dir := workload.WhitePagesInstance(schema)

	fmt.Println("== The Figure 2/3 bounding-schema ==")
	fmt.Print(boundschema.FormatSchema(schema, "whitepages"))

	fmt.Println("\n== The Figure 1 instance (as LDIF) ==")
	var buf bytes.Buffer
	if err := boundschema.WriteLDIF(&buf, dir); err != nil {
		log.Fatal(err)
	}
	fmt.Print(buf.String())

	fmt.Println("\n== Section 3: legality ==")
	report := boundschema.Check(schema, dir)
	fmt.Printf("Figure 1 is legal: %v\n", report.Legal())

	fmt.Println("\n== Section 4.2, first scenario ==")
	fmt.Println("Add a new orgUnit under attLabs together with its people:")
	app := boundschema.NewApplier(schema)
	tx := &boundschema.Transaction{}
	tx.Add("ou=networking,ou=attLabs,o=att",
		[]string{"orgUnit", "orgGroup", "top"}, nil)
	tx.Add("uid=pat,ou=networking,ou=attLabs,o=att",
		[]string{"person", "staffMember", "top"},
		map[string][]boundschema.Value{"name": {boundschema.String("pat doe")}})
	r, err := app.Apply(dir, tx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted: %v (the orgUnit arrives with a person, so\n"+
		"orgGroup →de person holds; checking the unit alone mid-transaction\n"+
		"would have failed — hence the Theorem 4.1 subtree granularity)\n", r.Legal())

	fmt.Println("\n== Section 4.2, second scenario ==")
	fmt.Println("Add an orgUnit under the person suciu:")
	tx = &boundschema.Transaction{}
	tx.Add("ou=bad,uid=suciu,ou=databases,ou=attLabs,o=att",
		[]string{"orgUnit", "orgGroup", "top"}, nil)
	tx.Add("uid=kid,ou=bad,uid=suciu,ou=databases,ou=attLabs,o=att",
		[]string{"person", "top"},
		map[string][]boundschema.Value{"name": {boundschema.String("kid")}})
	r, err = app.Apply(dir, tx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted: %v — the paper's predicted violations:\n%s\n", r.Legal(), r)
	fmt.Printf("instance untouched after rollback: %d entries\n", dir.Len())

	fmt.Println("\n== Section 5: consistency ==")
	res := boundschema.CheckConsistency(schema)
	fmt.Printf("the white-pages schema is consistent: %v\n", res.Consistent)

	// The Section 5.1 cycle: c1⇓, c1 →ch c2, c2 →de c1.
	bad := boundschema.NewSchema()
	for _, c := range []string{"c1", "c2"} {
		if err := bad.Classes.AddCore(c, boundschema.ClassTop); err != nil {
			log.Fatal(err)
		}
	}
	bad.Structure.RequireClass("c1")
	bad.Structure.RequireRel("c1", boundschema.AxisChild, "c2")
	bad.Structure.RequireRel("c2", boundschema.AxisDesc, "c1")
	res = boundschema.CheckConsistency(bad)
	fmt.Printf("\nthe Section 5.1 cycle is consistent: %v; derivation:\n%s",
		res.Consistent, res.Explanation)

	fmt.Println("\n== Constructive consistency ==")
	witness, err := boundschema.Materialize(schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("materialized witness (%d entries):\n%s", witness.Len(), witness)
}

// Semistructured demonstrates Section 6.3: bounding-schema structural
// relationships applied to semi-structured data, expressing constraints
// that fixed-length path constraints and regular path expressions cannot
// — required descendants at unbounded depth and forbidden nestings.
package main

import (
	"fmt"
	"log"

	"boundschema/internal/core"
	"boundschema/internal/semistruct"
)

func main() {
	c := semistruct.NewConstraints()
	// "each person node must have a (descendant) name node, without
	// having to fix the length of the path" (Section 6.3).
	check(c.Require("person", core.AxisDesc, "name"))
	// Countries may hold corporations, corporations may hold countries
	// and corporations — but a country never nests under a country.
	check(c.Forbid("country", core.AxisDesc, "country"))

	res := c.Consistent()
	fmt.Printf("constraints consistent: %v\n", res.Consistent)

	// The paper's corporate world: national corporations, international
	// corporations, conglomerates.
	national := semistruct.New("country",
		semistruct.New("corporation",
			semistruct.New("person",
				semistruct.New("contact", semistruct.Leaf("name", "ada")))))
	international := semistruct.New("corporation",
		semistruct.New("country"),
		semistruct.New("corporation", // a conglomerate member
			semistruct.New("person", semistruct.Leaf("name", "grace"))))

	report, err := c.Check(national, international)
	check(err)
	fmt.Printf("corporate forest legal: %v\n", report.Legal())

	// Nested countries are caught no matter how deep.
	nested := semistruct.New("country",
		semistruct.New("region",
			semistruct.New("province",
				semistruct.New("country"))))
	report, err = c.Check(nested)
	check(err)
	fmt.Printf("\nnested countries legal: %v\n%s\n", report.Legal(), report)

	// So are nameless persons.
	anon := semistruct.New("person",
		semistruct.New("address", semistruct.Leaf("street", "main st")))
	report, err = c.Check(anon)
	check(err)
	fmt.Printf("\nnameless person legal: %v\n%s\n", report.Legal(), report)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

package boundschema_test

import (
	"os"
	"path/filepath"
	"testing"

	"boundschema"
	"boundschema/internal/core"
	"boundschema/internal/ldif"
	"boundschema/internal/txn"
)

// The conformance suite drives the full file-based path — schema DSL →
// LDIF instance → checker / applier — over the corpus in testdata/.

func loadTestSchema(t *testing.T, name string) *boundschema.Schema {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := boundschema.ParseSchema(string(src))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func loadTestInstance(t *testing.T, name string, reg *boundschema.Registry) *boundschema.Directory {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := boundschema.ReadLDIF(f, reg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConformanceFigure1Legal(t *testing.T) {
	s := loadTestSchema(t, "whitepages.bs")
	d := loadTestInstance(t, "figure1.ldif", s.Registry)
	if d.Len() != 6 {
		t.Fatalf("figure1 has %d entries, want 6", d.Len())
	}
	if r := boundschema.Check(s, d); !r.Legal() {
		t.Fatalf("figure1 must be legal:\n%s", r)
	}
	if !boundschema.CheckConsistency(s).Consistent {
		t.Fatalf("white-pages schema must be consistent")
	}
}

func TestConformanceBrokenInstance(t *testing.T) {
	s := loadTestSchema(t, "whitepages.bs")
	d := loadTestInstance(t, "figure1-broken.ldif", s.Registry)
	r := boundschema.Check(s, d)
	if r.Legal() {
		t.Fatalf("seeded problems not detected")
	}
	want := map[core.ViolationKind]int{
		core.ViolationMissingAttr:  1, // suciu has no name
		core.ViolationRequiredRel:  1, // ou=empty has no person descendant
		core.ViolationForbiddenRel: 1, // laks has a child (cn=gadget)
	}
	for kind, n := range want {
		if got := len(r.ByKind(kind)); got < n {
			t.Errorf("%v violations = %d, want >= %d:\n%s", kind, got, n, r)
		}
	}
}

func TestConformanceCycleSchema(t *testing.T) {
	s := loadTestSchema(t, "cycle.bs")
	res := boundschema.CheckConsistency(s)
	if res.Consistent {
		t.Fatalf("cycle.bs must be inconsistent")
	}
	if res.Explanation == "" {
		t.Fatalf("missing derivation")
	}
	if _, err := boundschema.Materialize(s); err == nil {
		t.Fatalf("materializing an inconsistent schema must fail")
	}
}

func applyChanges(t *testing.T, s *boundschema.Schema, d *boundschema.Directory, file string) *boundschema.Report {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ldif.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	tx, err := txn.FromRecords(recs, s.Registry)
	if err != nil {
		t.Fatal(err)
	}
	app := boundschema.NewApplier(s)
	r, err := app.Apply(d, tx)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConformanceGoodChanges(t *testing.T) {
	s := loadTestSchema(t, "whitepages.bs")
	d := loadTestInstance(t, "figure1.ldif", s.Registry)
	if r := applyChanges(t, s, d, "changes-good.ldif"); !r.Legal() {
		t.Fatalf("good changes rejected:\n%s", r)
	}
	if d.ByDN("uid=pat,ou=networking,ou=attLabs,o=att") == nil {
		t.Errorf("change not applied")
	}
	if r := boundschema.Check(s, d); !r.Legal() {
		t.Fatalf("instance illegal after good changes:\n%s", r)
	}
}

func TestConformanceBadChanges(t *testing.T) {
	s := loadTestSchema(t, "whitepages.bs")
	d := loadTestInstance(t, "figure1.ldif", s.Registry)
	before := d.String()
	if r := applyChanges(t, s, d, "changes-bad.ldif"); r.Legal() {
		t.Fatalf("bad changes accepted")
	}
	if d.String() != before {
		t.Fatalf("instance mutated despite rejection")
	}
}

// TestConformanceSchemaRoundTrip: every schema file reparses from its
// canonical formatting.
func TestConformanceSchemaRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.bs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no schema files in testdata")
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		s, name, err := boundschema.ParseSchema(string(src))
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		text := boundschema.FormatSchema(s, name)
		if _, _, err := boundschema.ParseSchema(text); err != nil {
			t.Errorf("%s: canonical form does not reparse: %v", file, err)
		}
	}
}

// TestConformanceInstanceRoundTrip: every LDIF file survives a
// write/read cycle.
func TestConformanceInstanceRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.ldif"))
	if err != nil {
		t.Fatal(err)
	}
	s := loadTestSchema(t, "whitepages.bs")
	for _, file := range files {
		if filepath.Base(file) == "changes-good.ldif" || filepath.Base(file) == "changes-bad.ldif" {
			continue // change records, not content
		}
		d := loadTestInstance(t, filepath.Base(file), s.Registry)
		tmp := filepath.Join(t.TempDir(), "out.ldif")
		f, err := os.Create(tmp)
		if err != nil {
			t.Fatal(err)
		}
		if err := boundschema.WriteLDIF(f, d); err != nil {
			t.Fatal(err)
		}
		f.Close()
		g, err := os.Open(tmp)
		if err != nil {
			t.Fatal(err)
		}
		back, err := boundschema.ReadLDIF(g, s.Registry)
		g.Close()
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if back.Len() != d.Len() || back.String() != d.String() {
			t.Errorf("%s: round trip changed the instance", file)
		}
	}
}

package boundschema_test

import (
	"bytes"
	"strings"
	"testing"

	"boundschema"
)

const apiSchemaSrc = `
schema team {
  attribute name: string
  attribute mail: string
  class group extends top { }
  class person extends top {
    aux online
    requires name
  }
  auxclass online { allows mail }
  require class group
  require group descendant person
  forbid person child top
}
`

// TestPublicAPIEndToEnd drives the whole facade: parse, build, check,
// update, serialize, reload, consistency, materialize.
func TestPublicAPIEndToEnd(t *testing.T) {
	schema, name, err := boundschema.ParseSchema(apiSchemaSrc)
	if err != nil {
		t.Fatal(err)
	}
	if name != "team" {
		t.Errorf("name = %q", name)
	}

	res := boundschema.CheckConsistency(schema)
	if !res.Consistent {
		t.Fatalf("schema inconsistent: %s", res.Explanation)
	}

	dir := boundschema.NewDirectory(schema.Registry)
	eng, err := dir.AddRoot("ou=eng", "group", boundschema.ClassTop)
	if err != nil {
		t.Fatal(err)
	}
	ada, err := dir.AddChild(eng, "uid=ada", "person", "online", boundschema.ClassTop)
	if err != nil {
		t.Fatal(err)
	}
	ada.AddValue("name", boundschema.String("Ada"))
	ada.AddValue("mail", boundschema.String("ada@example.org"))

	if !boundschema.Legal(schema, dir) {
		t.Fatalf("instance should be legal:\n%s", boundschema.Check(schema, dir))
	}

	// Update through the applier; a violating delete must roll back.
	app := boundschema.NewApplier(schema)
	app.Counts = boundschema.NewCountIndex(dir)
	tx := &boundschema.Transaction{}
	tx.Delete("uid=ada,ou=eng")
	report, err := app.Apply(dir, tx)
	if err != nil {
		t.Fatal(err)
	}
	if report.Legal() {
		t.Fatalf("deleting the only person must be rejected")
	}
	if dir.Len() != 2 {
		t.Fatalf("rollback failed: len=%d", dir.Len())
	}

	// LDIF round trip.
	var buf bytes.Buffer
	if err := boundschema.WriteLDIF(&buf, dir); err != nil {
		t.Fatal(err)
	}
	back, err := boundschema.ReadLDIF(bytes.NewReader(buf.Bytes()), schema.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != dir.Len() {
		t.Fatalf("LDIF round trip changed size")
	}
	if !boundschema.Legal(schema, back) {
		t.Fatalf("round-tripped instance illegal")
	}

	// Schema formatting round trip.
	text := boundschema.FormatSchema(schema, "team")
	if !strings.Contains(text, "require group descendant person") {
		t.Errorf("formatted schema missing structure element:\n%s", text)
	}
	schema2, _, err := boundschema.ParseSchema(text)
	if err != nil {
		t.Fatal(err)
	}
	if !boundschema.Legal(schema2, dir) {
		t.Fatalf("reparsed schema rejects the instance")
	}

	// Constructive consistency.
	witness, err := boundschema.Materialize(schema)
	if err != nil {
		t.Fatal(err)
	}
	if !boundschema.Legal(schema, witness) {
		t.Fatalf("witness illegal")
	}
}

func TestFacadeValueConstructors(t *testing.T) {
	if boundschema.String("x").String() != "x" {
		t.Error("String")
	}
	if boundschema.Int(3).Int() != 3 {
		t.Error("Int")
	}
	if !boundschema.Bool(true).Bool() {
		t.Error("Bool")
	}
	if boundschema.DN("o=x").String() != "o=x" {
		t.Error("DN")
	}
	if boundschema.Tel("+1").String() != "+1" {
		t.Error("Tel")
	}
	if boundschema.NewRegistry() == nil || boundschema.NewSchema() == nil {
		t.Error("constructors")
	}
}

func TestFacadeEvolution(t *testing.T) {
	old, _, err := boundschema.ParseSchema(apiSchemaSrc)
	if err != nil {
		t.Fatal(err)
	}
	dir := boundschema.NewDirectory(old.Registry)
	g, _ := dir.AddRoot("ou=eng", "group", boundschema.ClassTop)
	p, _ := dir.AddChild(g, "uid=ada", "person", boundschema.ClassTop)
	p.AddValue("name", boundschema.String("Ada"))
	if !boundschema.Legal(old, dir) {
		t.Fatal("fixture must be legal")
	}

	new := old.Clone()
	new.Attrs.Allow("person", "homePage") // lightweight
	plan := boundschema.PlanEvolution(old, new)
	if !plan.Lightweight() {
		t.Fatalf("adding an allowed attribute must be lightweight:\n%s", plan)
	}

	new3 := old.Clone()
	new3.Attrs.Require("person", "mail")
	plan3 := boundschema.PlanEvolution(old, new3)
	if plan3.Lightweight() {
		t.Fatalf("new required attribute must not be lightweight")
	}
	r := boundschema.CheckEvolution(new3, dir, plan3)
	if r.Legal() {
		t.Fatalf("ada has no mail; evolution check must fail")
	}
}

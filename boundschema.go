// Package boundschema implements bounding-schemas for LDAP directories,
// reproducing "On Bounding-Schemas for LDAP Directories" (Amer-Yahia,
// Jagadish, Lakshmanan, Srivastava — EDBT 2000).
//
// A bounding-schema constrains directory instances from both sides
// without sacrificing LDAP's flexibility: lower bounds (required
// attributes, required classes, required structural relationships) and
// upper bounds (allowed attributes, single inheritance with auxiliary
// classes, forbidden structural relationships). The package provides:
//
//   - the schema and instance model (Section 2);
//   - legality testing via a reduction to hierarchical selection queries,
//     linear in the instance size (Section 3, Theorem 3.1);
//   - incremental legality testing under subtree updates (Section 4,
//     Figure 5, Theorems 4.1/4.2) through the transaction applier;
//   - schema-consistency testing by a polynomial inference-system closure
//     (Section 5, Theorem 5.2), plus a constructive witness materializer;
//   - a textual schema definition language and LDIF instance I/O;
//   - the Section 6.3 extension to semi-structured data (package
//     internal/semistruct).
//
// Quick start:
//
//	schema, _, err := boundschema.ParseSchema(src)
//	dir, err := boundschema.ReadLDIF(file, schema.Registry)
//	report := boundschema.Check(schema, dir)
//	if !report.Legal() { ... }
//
// Updates that must preserve legality go through an Applier:
//
//	app := boundschema.NewApplier(schema)
//	tx := &boundschema.Transaction{}
//	tx.Add("uid=new,ou=eng,o=corp", []string{"person", "top"}, attrs)
//	report, err := app.Apply(dir, tx)   // rolls back on violation
package boundschema

import (
	"io"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/ldif"
	"boundschema/internal/schemadsl"
	"boundschema/internal/txn"
)

// Re-exported model types. The aliases make the internal packages' types
// part of the public API without duplicating them.
type (
	// Schema is a bounding-schema (Definition 2.5).
	Schema = core.Schema
	// AttributeSchema holds required/allowed attributes per class.
	AttributeSchema = core.AttributeSchema
	// ClassSchema holds the core hierarchy and auxiliary classes.
	ClassSchema = core.ClassSchema
	// StructureSchema holds required classes and required/forbidden
	// structural relationships.
	StructureSchema = core.StructureSchema
	// Axis is a hierarchical direction (child/descendant/parent/ancestor).
	Axis = core.Axis
	// Element is a schema element in the sense of Definition 2.6.
	Element = core.Element
	// RequiredClass, RequiredRel, ForbiddenRel, Subclass and Disjoint are
	// the concrete element kinds.
	RequiredClass = core.RequiredClass
	RequiredRel   = core.RequiredRel
	ForbiddenRel  = core.ForbiddenRel
	Subclass      = core.Subclass
	Disjoint      = core.Disjoint
	// Checker tests instance legality against one schema.
	Checker = core.Checker
	// Report lists legality violations; an empty report means legal.
	Report = core.Report
	// Violation is one legality defect.
	Violation = core.Violation
	// ConsistencyResult is the Section 5 verdict.
	ConsistencyResult = core.ConsistencyResult
	// EvolutionPlan classifies schema changes by the revalidation they
	// demand (Section 6.2).
	EvolutionPlan = core.EvolutionPlan
	// EvolutionStep is one classified schema change.
	EvolutionStep = core.EvolutionStep

	// Directory is a directory instance (forest of entries).
	Directory = dirtree.Directory
	// Entry is a directory entry.
	Entry = dirtree.Entry
	// Value is a typed attribute value.
	Value = dirtree.Value
	// Registry is the attribute typing function τ.
	Registry = dirtree.Registry

	// Transaction is a sequence of entry insertions and deletions.
	Transaction = txn.Transaction
	// Applier applies transactions while preserving legality.
	Applier = txn.Applier
	// CountIndex makes required-class checks incremental under deletion.
	CountIndex = txn.CountIndex
	// KeyIndex makes Section 6.1 key-uniqueness checks incremental.
	KeyIndex = core.KeyIndex
)

// Axis values.
const (
	AxisChild  = core.AxisChild
	AxisDesc   = core.AxisDesc
	AxisParent = core.AxisParent
	AxisAnc    = core.AxisAnc
)

// ClassTop is the root of every core class hierarchy.
const ClassTop = core.ClassTop

// NewSchema returns an empty bounding-schema.
func NewSchema() *Schema { return core.NewSchema() }

// NewDirectory returns an empty directory instance typed by reg (which
// may be nil for all-string attributes).
func NewDirectory(reg *Registry) *Directory { return dirtree.New(reg) }

// NewRegistry returns an attribute registry with objectClass predeclared.
func NewRegistry() *Registry { return dirtree.NewRegistry() }

// String, Int, Bool, DN and Tel construct typed attribute values.
func String(s string) Value { return dirtree.String(s) }
func Int(i int64) Value     { return dirtree.Int(i) }
func Bool(b bool) Value     { return dirtree.Bool(b) }
func DN(dn string) Value    { return dirtree.DN(dn) }
func Tel(num string) Value  { return dirtree.Tel(num) }

// NewChecker returns a legality checker for the schema.
func NewChecker(s *Schema) *Checker { return core.NewChecker(s) }

// Check tests full legality of d against s (Definition 2.7): per-entry
// content checks plus the query-based structure checks of Section 3.
func Check(s *Schema, d *Directory) *Report { return core.NewChecker(s).Check(d) }

// Legal reports whether d is legal w.r.t. s, short-circuiting on the
// first violation.
func Legal(s *Schema, d *Directory) bool { return core.NewChecker(s).Legal(d) }

// CheckConsistency decides whether the schema admits any legal instance
// (Section 5, Theorem 5.2) in time polynomial in the schema size.
func CheckConsistency(s *Schema) ConsistencyResult { return core.CheckConsistency(s) }

// Materialize constructs a legal witness instance for a consistent
// schema.
func Materialize(s *Schema) (*Directory, error) { return core.Materialize(s) }

// NewApplier returns a transaction applier using the Figure 5
// incremental checks.
func NewApplier(s *Schema) *Applier { return txn.NewApplier(s) }

// PlanEvolution classifies the differences between two schemas by the
// revalidation each demands on instances legal under the old schema
// (Section 6.2: many evolutions are "lightweight").
func PlanEvolution(old, new *Schema) *EvolutionPlan { return core.PlanEvolution(old, new) }

// CheckEvolution verifies an old-legal instance against the new schema,
// running only the checks the plan demands.
func CheckEvolution(new *Schema, d *Directory, plan *EvolutionPlan) *Report {
	return core.CheckEvolution(new, d, plan)
}

// Lint reports schema quality findings: unsatisfiable or unused classes,
// orphan auxiliaries, and structure elements derivable from the rest of
// the schema.
func Lint(s *Schema) []core.LintFinding { return core.Lint(s) }

// GuaranteedElements returns the structure elements whose violation
// queries the schema itself proves empty — the §7 observation that
// schemas enable query optimization, applied to the schema's own
// elements.
func GuaranteedElements(s *Schema) []Element { return core.GuaranteedElements(s) }

// NewCountIndex builds the per-class count index over d.
func NewCountIndex(d *Directory) *CountIndex { return txn.NewCountIndex(d) }

// NewKeyIndex builds the key-value index over d for incremental
// key-uniqueness checks (Section 6.1).
func NewKeyIndex(s *Schema, d *Directory) *KeyIndex { return core.NewKeyIndex(s, d) }

// ParseSchema parses a schema written in the definition language
// (internal/schemadsl); it returns the schema and its declared name.
func ParseSchema(src string) (*Schema, string, error) { return schemadsl.Parse(src) }

// FormatSchema renders a schema in the definition language.
func FormatSchema(s *Schema, name string) string { return schemadsl.Format(s, name) }

// ReadLDIF loads a directory instance from LDIF content records.
func ReadLDIF(r io.Reader, reg *Registry) (*Directory, error) {
	return ldif.ReadDirectory(r, reg)
}

// WriteLDIF serializes a directory instance as LDIF content records.
func WriteLDIF(w io.Writer, d *Directory) error { return ldif.WriteDirectory(w, d) }

// Bschema is the bounding-schema command line tool: it validates LDAP
// directory instances against bounding-schemas, applies update
// transactions with incremental legality checking, decides schema
// consistency, and evaluates hierarchical selection queries.
//
// Usage:
//
//	bschema check      -schema S.bs -instance D.ldif [-parallel N]
//	bschema consistent -schema S.bs [-explain] [-witness out.ldif]
//	bschema apply      -schema S.bs -instance D.ldif -changes C.ldif [-full] [-counts] [-o out.ldif]
//	bschema query      -instance D.ldif -q '(minus (select (objectClass=a)) ...)'
//	bschema search     -instance D.ldif -filter '(objectClass=person)' [-base DN]
//	bschema lint       -schema S.bs
//	bschema format     -schema S.bs
//	bschema materialize -schema S.bs
//	bschema carve      -schema S.bs -instance D.ldif [-shards N] [-o dir]
//
// Schemas use the schema definition language (see ParseSchema); instances
// use LDIF content records; changes use LDIF change records (changetype
// add/delete).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"boundschema"
	"boundschema/internal/core"
	"boundschema/internal/filter"
	"boundschema/internal/hquery"
	"boundschema/internal/ldif"
	"boundschema/internal/semistruct"
	"boundschema/internal/shard"
	"boundschema/internal/txn"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "check":
		err = cmdCheck(os.Args[2:])
	case "consistent":
		err = cmdConsistent(os.Args[2:])
	case "apply":
		err = cmdApply(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "search":
		err = cmdSearch(os.Args[2:])
	case "lint":
		err = cmdLint(os.Args[2:])
	case "elements":
		err = cmdElements(os.Args[2:])
	case "format":
		err = cmdFormat(os.Args[2:])
	case "materialize":
		err = cmdMaterialize(os.Args[2:])
	case "carve":
		err = cmdCarve(os.Args[2:])
	case "sscheck":
		err = cmdSSCheck(os.Args[2:])
	case "help", "-h", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "bschema: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bschema: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bschema <command> [flags]

commands:
  check        test an instance's legality against a schema
  consistent   decide whether a schema admits any legal instance
  apply        apply an LDIF change stream with incremental checking
  query        evaluate a hierarchical selection query
  search       evaluate an LDAP filter
  lint         report schema quality findings (redundant elements, dead classes)
  elements     list a schema's elements, guarantees and derived facts
  format       canonicalize a schema definition
  materialize  emit a legal witness instance for a consistent schema
  carve        split a legal instance into per-shard instances plus a
               shard map for bsrouter (Theorem 4.1 subtree sharding)
  sscheck      check semi-structured data (outline files) against label
               constraints (Section 6.3)`)
}

func loadSchema(path string) (*boundschema.Schema, string, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	return boundschema.ParseSchema(string(src))
}

func loadInstance(path string, reg *boundschema.Registry) (*boundschema.Directory, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return boundschema.ReadLDIF(f, reg)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema definition file")
	instPath := fs.String("instance", "", "LDIF instance file")
	maxWitnesses := fs.Int("max-witnesses", 20, "cap violations reported per element (0 = all)")
	parallel := fs.Int("parallel", 0, "checker workers (0 = auto, 1 = sequential)")
	fs.Parse(args)
	if *schemaPath == "" || *instPath == "" {
		return fmt.Errorf("check: -schema and -instance are required")
	}
	s, name, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	d, err := loadInstance(*instPath, s.Registry)
	if err != nil {
		return err
	}
	checker := boundschema.NewChecker(s)
	checker.MaxWitnesses = *maxWitnesses
	checker.Concurrency = *parallel
	report := checker.Check(d)
	fmt.Printf("schema %s, instance %s (%d entries): %s\n", name, *instPath, d.Len(), report)
	if !report.Legal() {
		os.Exit(1)
	}
	return nil
}

func cmdConsistent(args []string) error {
	fs := flag.NewFlagSet("consistent", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema definition file")
	explain := fs.Bool("explain", false, "print the inconsistency derivation")
	witness := fs.String("witness", "", "write a witness instance to this LDIF file")
	fs.Parse(args)
	if *schemaPath == "" {
		return fmt.Errorf("consistent: -schema is required")
	}
	s, name, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	res := boundschema.CheckConsistency(s)
	fmt.Printf("schema %s: consistent=%v (%d closed facts)\n", name, res.Consistent, res.Facts)
	if len(res.Unsatisfiable) > 0 {
		fmt.Printf("unsatisfiable classes: %v\n", res.Unsatisfiable)
	}
	if !res.Consistent {
		if *explain {
			fmt.Print(res.Explanation)
		}
		os.Exit(1)
	}
	if *witness != "" {
		d, err := boundschema.Materialize(s)
		if err != nil {
			return err
		}
		f, err := os.Create(*witness)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := boundschema.WriteLDIF(f, d); err != nil {
			return err
		}
		fmt.Printf("witness with %d entries written to %s\n", d.Len(), *witness)
	}
	return nil
}

func cmdApply(args []string) error {
	fs := flag.NewFlagSet("apply", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema definition file")
	instPath := fs.String("instance", "", "LDIF instance file")
	changesPath := fs.String("changes", "", "LDIF change records (changetype add/delete)")
	full := fs.Bool("full", false, "use a full recheck instead of the Figure 5 incremental tests")
	counts := fs.Bool("counts", false, "maintain a class-count index (incremental c⇓ under deletion)")
	out := fs.String("o", "", "write the updated instance to this LDIF file")
	fs.Parse(args)
	if *schemaPath == "" || *instPath == "" || *changesPath == "" {
		return fmt.Errorf("apply: -schema, -instance and -changes are required")
	}
	s, _, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	d, err := loadInstance(*instPath, s.Registry)
	if err != nil {
		return err
	}
	cf, err := os.Open(*changesPath)
	if err != nil {
		return err
	}
	recs, err := ldif.NewReader(cf).ReadAll()
	cf.Close()
	if err != nil {
		return err
	}
	tx, err := txn.FromRecords(recs, s.Registry)
	if err != nil {
		return err
	}
	app := boundschema.NewApplier(s)
	if *full {
		app.Mode = txn.CheckFull
	}
	if *counts {
		app.Counts = boundschema.NewCountIndex(d)
	}
	report, err := app.Apply(d, tx)
	if err != nil {
		return err
	}
	if !report.Legal() {
		fmt.Printf("transaction rejected (instance unchanged):\n%s\n", report)
		os.Exit(1)
	}
	fmt.Printf("transaction applied: %d operations, %d entries now\n", tx.Len(), d.Len())
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		return boundschema.WriteLDIF(f, d)
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	instPath := fs.String("instance", "", "LDIF instance file")
	q := fs.String("q", "", "hierarchical selection query (s-expression)")
	explain := fs.Bool("explain", false, "print per-operator evaluation statistics")
	optimizeWith := fs.String("optimize", "", "schema file: rewrite the query using its guarantees (assumes a legal instance)")
	fs.Parse(args)
	if *instPath == "" || *q == "" {
		return fmt.Errorf("query: -instance and -q are required")
	}
	d, err := loadInstance(*instPath, nil)
	if err != nil {
		return err
	}
	query, err := hquery.Parse(*q)
	if err != nil {
		return err
	}
	if *optimizeWith != "" {
		s, _, err := loadSchema(*optimizeWith)
		if err != nil {
			return err
		}
		before := hquery.String(query)
		query = core.OptimizeQuery(query, s)
		if after := hquery.String(query); after != before {
			fmt.Fprintf(os.Stderr, "optimized: %s\n", after)
		}
	}
	var results []*boundschema.Entry
	if *explain {
		var st *hquery.Stats
		results, st = hquery.EvalWithStats(query, hquery.NewBinding(d))
		fmt.Fprintf(os.Stderr, "%stotal operand work: %d (|D| = %d)\n", st, st.TotalWork(), d.Len())
	} else {
		results = hquery.Eval(query, hquery.NewBinding(d))
	}
	for _, e := range results {
		fmt.Println(e.DN())
	}
	fmt.Fprintf(os.Stderr, "%d result(s)\n", len(results))
	return nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	instPath := fs.String("instance", "", "LDIF instance file")
	fsrc := fs.String("filter", "", "LDAP search filter")
	base := fs.String("base", "", "base DN (default: whole forest)")
	fs.Parse(args)
	if *instPath == "" || *fsrc == "" {
		return fmt.Errorf("search: -instance and -filter are required")
	}
	d, err := loadInstance(*instPath, nil)
	if err != nil {
		return err
	}
	f, err := filter.Parse(*fsrc)
	if err != nil {
		return err
	}
	view := d.All()
	if *base != "" {
		e := d.ByDN(*base)
		if e == nil {
			return fmt.Errorf("search: base %q not found", *base)
		}
		view = d.SubtreeView(e)
	}
	n := 0
	for _, e := range view.Entries() {
		if f.Matches(e) {
			fmt.Println(e.DN())
			n++
		}
	}
	fmt.Fprintf(os.Stderr, "%d result(s)\n", n)
	return nil
}

func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema definition file")
	fs.Parse(args)
	if *schemaPath == "" {
		return fmt.Errorf("lint: -schema is required")
	}
	s, name, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	findings := core.Lint(s)
	if len(findings) == 0 {
		fmt.Printf("schema %s: no findings\n", name)
		return nil
	}
	fmt.Printf("schema %s: %d finding(s)\n", name, len(findings))
	for _, f := range findings {
		fmt.Println("  " + f.String())
	}
	os.Exit(1)
	return nil
}

func cmdElements(args []string) error {
	fs := flag.NewFlagSet("elements", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema definition file")
	derived := fs.Bool("derived", false, "also print every element the inference closure derives")
	fs.Parse(args)
	if *schemaPath == "" {
		return fmt.Errorf("elements: -schema is required")
	}
	s, name, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	fmt.Printf("schema %s elements:\n", name)
	for _, el := range s.Elements() {
		fmt.Println("  " + el.ElementString())
	}
	guaranteed := core.GuaranteedElements(s)
	if len(guaranteed) > 0 {
		fmt.Println("structure elements the schema guarantees (queries fold to ∅):")
		for _, el := range guaranteed {
			fmt.Println("  " + el.ElementString())
		}
	}
	if *derived {
		in := core.Infer(s)
		fmt.Printf("closure (%d facts):\n", in.NumFacts())
		for _, el := range in.Derived() {
			fmt.Println("  " + el.ElementString())
		}
	}
	return nil
}

func cmdFormat(args []string) error {
	fs := flag.NewFlagSet("format", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema definition file")
	fs.Parse(args)
	if *schemaPath == "" {
		return fmt.Errorf("format: -schema is required")
	}
	s, name, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	fmt.Print(boundschema.FormatSchema(s, name))
	return nil
}

func cmdSSCheck(args []string) error {
	fs := flag.NewFlagSet("sscheck", flag.ExitOnError)
	dataPath := fs.String("data", "", "semi-structured data file (indented outline)")
	var constraints multiFlag
	fs.Var(&constraints, "c", "constraint (repeatable): 'require L', 'require A descendant B', 'forbid A child B'")
	fs.Parse(args)
	if *dataPath == "" || len(constraints) == 0 {
		return fmt.Errorf("sscheck: -data and at least one -c are required")
	}
	c := semistruct.NewConstraints()
	for _, src := range constraints {
		if err := c.ParseConstraint(src); err != nil {
			return err
		}
	}
	if res := c.Consistent(); !res.Consistent {
		fmt.Printf("constraints are unsatisfiable:\n%s", res.Explanation)
		os.Exit(1)
	}
	f, err := os.Open(*dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	roots, err := semistruct.ParseForest(f)
	if err != nil {
		return err
	}
	report, err := c.Check(roots...)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s\n", *dataPath, report)
	if !report.Legal() {
		os.Exit(1)
	}
	return nil
}

// multiFlag collects repeated -c flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// cmdCarve splits a legal instance by subtree into n shard instances
// plus the default-shard remainder, writing one LDIF per shard and a
// shards.conf bsrouter can load. Roots are chosen by shard.AutoCut:
// depth-1 subtrees, largest first, each validated to stay legal when
// carved out with its spine ghosts, dealt to the smallest shard.
func cmdCarve(args []string) error {
	fs := flag.NewFlagSet("carve", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema definition file")
	instPath := fs.String("instance", "", "LDIF instance file")
	n := fs.Int("shards", 2, "number of carved shards (a default shard is always added)")
	portBase := fs.Int("port-base", 4001, "first shard port; shard i serves 127.0.0.1:<port-base+i>, the default shard the last port")
	outDir := fs.String("o", "shards", "output directory for per-shard LDIF files and shards.conf")
	fs.Parse(args)
	if *schemaPath == "" || *instPath == "" {
		return fmt.Errorf("carve: -schema and -instance are required")
	}
	s, _, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	d, err := loadInstance(*instPath, s.Registry)
	if err != nil {
		return err
	}
	if report := boundschema.NewChecker(s).Check(d); !report.Legal() {
		return fmt.Errorf("carve: instance is illegal; fix it first:\n%s", report)
	}
	roots, err := shard.AutoCut(s, d, *n)
	if err != nil {
		return err
	}
	var shards []*shard.Shard
	port := *portBase
	for i, rs := range roots {
		if len(rs) == 0 {
			fmt.Fprintf(os.Stderr, "carve: shard s%d gets no subtree (instance has too few cuttable depth-1 subtrees)\n", i)
			continue
		}
		shards = append(shards, &shard.Shard{Name: fmt.Sprintf("s%d", i), Addr: fmt.Sprintf("127.0.0.1:%d", port), Roots: rs})
		port++
	}
	def := &shard.Shard{Name: "rest", Addr: fmt.Sprintf("127.0.0.1:%d", port)}
	m, err := shard.NewMap(shards, def)
	if err != nil {
		return err
	}
	dirs, err := shard.Carve(d, m)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	for _, sh := range m.All() {
		path := filepath.Join(*outDir, sh.Name+".ldif")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := boundschema.WriteLDIF(f, dirs[sh.Name]); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("shard %-6s %4d entries  %s\n", sh.Name, dirs[sh.Name].Len(), path)
	}
	confPath := filepath.Join(*outDir, "shards.conf")
	conf := strings.Join(m.Render(), "\n") + "\n"
	if err := os.WriteFile(confPath, []byte(conf), 0o644); err != nil {
		return err
	}
	fmt.Printf("shard map written to %s; start each shard with\n", confPath)
	fmt.Printf("  bsd -schema %s -instance %s/<name>.ldif -addr <addr from the map>\n", *schemaPath, *outDir)
	fmt.Printf("and the router with\n  bsrouter -map %s\n", confPath)
	return nil
}

func cmdMaterialize(args []string) error {
	fs := flag.NewFlagSet("materialize", flag.ExitOnError)
	schemaPath := fs.String("schema", "", "schema definition file")
	fs.Parse(args)
	if *schemaPath == "" {
		return fmt.Errorf("materialize: -schema is required")
	}
	s, _, err := loadSchema(*schemaPath)
	if err != nil {
		return err
	}
	d, err := boundschema.Materialize(s)
	if err != nil {
		return err
	}
	return boundschema.WriteLDIF(os.Stdout, d)
}

// Bsd is a small directory server enforcing a bounding-schema: every
// update transaction is validated with the paper's incremental legality
// tests (Figure 5) and rejected atomically on violation, so the served
// instance is legal at all times.
//
// Usage:
//
//	bsd -schema wp.bs -instance corpus.ldif [-addr 127.0.0.1:3890]
//	    [-snapshot out.ldif] [-journal changes.ldif] [-parallel N]
//	    [-read-timeout 0] [-idle-timeout 0] [-max-conns 0]
//	    [-drain-timeout 1s] [-journal-rotate 0] [-metrics-addr host:port]
//	    [-group-commit=true] [-commit-delay 0] [-fsck]
//	    [-repl-addr host:port] [-repl-mode async|semisync]
//	    [-replica-of host:port] [-primary-client-addr host:port]
//
// Replication: -repl-addr makes this server a primary shipping its
// journal to replicas; -repl-mode semisync gates COMMIT's OK on a
// replica acknowledging durability. -replica-of starts the server as a
// read-only replica streaming from a primary's -repl-addr; writes are
// refused with a redirect and PROMOTE turns a caught-up replica into a
// primary. Both roles require -journal.
//
// With -fsck the server does not serve: it runs the crash-recovery
// pipeline over -journal (validate record checksums and sequence
// continuity, truncate a torn tail, quarantine corruption, prove the
// recovered instance legal), prints the report, and exits 0 if the
// journal is servable, 1 if it was refused.
//
// Protocol (line-oriented over TCP; every response ends with OK, ILLEGAL
// or ERR). DNs may contain spaces: SEARCH's base= takes the rest of the
// line, and MOVE separates source and destination with "->":
//
//	SEARCH (objectClass=person) [base=ou=Human Resources,o=corp]
//	QUERY (minus (select (objectClass=orgGroup)) ...)
//	GET uid=ada,ou=eng,o=corp
//	BEGIN
//	ADD uid=new,ou=eng,o=corp
//	objectClass: person
//	objectClass: top
//	name: New Person
//	DELETE uid=old,ou=eng,o=corp
//	MOVE ou=eng,o=corp -> o=corp
//	COMMIT
//	CHECK | CONSISTENT | SCHEMA | STAT | METRICS | SNAPSHOT | VERIFY | QUIT
package main

import (
	"bufio"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"boundschema"
	"boundschema/internal/repl"
	"boundschema/internal/server"
)

func main() {
	schemaPath := flag.String("schema", "", "schema definition file")
	instPath := flag.String("instance", "", "initial LDIF instance (empty starts blank)")
	addr := flag.String("addr", "127.0.0.1:3890", "listen address")
	snapshot := flag.String("snapshot", "", "write the instance as LDIF on shutdown")
	journal := flag.String("journal", "", "replay and append committed transactions to this LDIF change log")
	parallel := flag.Int("parallel", 0, "CHECK workers (0 = auto, 1 = sequential)")
	readTimeout := flag.Duration("read-timeout", 0, "per-read deadline on client connections (0 = off)")
	idleTimeout := flag.Duration("idle-timeout", 0, "cut sessions idle between commands for this long (0 = off)")
	maxConns := flag.Int("max-conns", 0, "max concurrent sessions; further accepts queue (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", time.Second, "grace given to live sessions on shutdown")
	journalRotate := flag.Int64("journal-rotate", 0, "compact the journal into a snapshot once it exceeds this many bytes (0 = never)")
	groupCommit := flag.Bool("group-commit", true, "batch concurrent COMMITs into one journal fsync (off = one fsync per transaction)")
	commitDelay := flag.Duration("commit-delay", 0, "extra wait before each journal fsync so more commits join the batch (0 = none)")
	metricsAddr := flag.String("metrics-addr", "", "serve expvar metrics over HTTP on this address (empty = off)")
	fsck := flag.Bool("fsck", false, "check and repair the -journal (truncate torn tail, quarantine corruption), print a report, and exit")
	replAddr := flag.String("repl-addr", "", "serve journal replication to replicas on this address (empty = off)")
	replModeName := flag.String("repl-mode", "async", "replication mode: async, or semisync to gate COMMIT on a replica ack")
	replicaOf := flag.String("replica-of", "", "run as a read-only replica streaming from this primary replication address")
	primaryClient := flag.String("primary-client-addr", "", "with -replica-of: the primary's CLIENT address to advertise in write redirects (empty = advertise the replication address)")
	flag.Parse()
	if *schemaPath == "" {
		fmt.Fprintln(os.Stderr, "bsd: -schema is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*schemaPath)
	if err != nil {
		fatal(err)
	}
	schema, name, err := boundschema.ParseSchema(string(src))
	if err != nil {
		fatal(err)
	}
	res := boundschema.CheckConsistency(schema)
	if !res.Consistent {
		fmt.Fprintf(os.Stderr, "bsd: schema %s is inconsistent:\n%s", name, res.Explanation)
		os.Exit(1)
	}

	dir := boundschema.NewDirectory(schema.Registry)
	if *instPath != "" {
		f, err := os.Open(*instPath)
		if err != nil {
			fatal(err)
		}
		dir, err = boundschema.ReadLDIF(f, schema.Registry)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	srv, err := server.New(schema, name, dir)
	if err != nil {
		fatal(err)
	}
	srv.SetConcurrency(*parallel)
	srv.SetErrorLog(log.New(os.Stderr, "bsd: ", log.LstdFlags))
	srv.SetLimits(server.Limits{
		ReadTimeout:  *readTimeout,
		IdleTimeout:  *idleTimeout,
		MaxConns:     *maxConns,
		DrainTimeout: *drainTimeout,
	})
	srv.SetJournalRotation(*journalRotate)
	srv.SetGroupCommit(*groupCommit)
	srv.SetCommitDelay(*commitDelay)
	if *fsck {
		if *journal == "" {
			fmt.Fprintln(os.Stderr, "bsd: -fsck requires -journal")
			os.Exit(2)
		}
		rep, err := srv.Fsck(*journal)
		for _, l := range rep.Lines() {
			fmt.Println(l)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsd: %v\n", err)
			os.Exit(1)
		}
		return
	}
	replMode, ok := repl.ParseMode(*replModeName)
	if !ok {
		fmt.Fprintf(os.Stderr, "bsd: unknown -repl-mode %q (want async or semisync)\n", *replModeName)
		os.Exit(2)
	}
	srv.SetReplicationMode(replMode)
	if (*replAddr != "" || *replicaOf != "") && *journal == "" {
		fmt.Fprintln(os.Stderr, "bsd: replication requires -journal")
		os.Exit(2)
	}
	if *replAddr != "" && *replicaOf != "" {
		fmt.Fprintln(os.Stderr, "bsd: -repl-addr and -replica-of are mutually exclusive")
		os.Exit(2)
	}
	if *journal != "" {
		if err := srv.OpenJournal(*journal); err != nil {
			fatal(err)
		}
	}
	if *replAddr != "" {
		bound, err := srv.ListenRepl(*replAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("bsd: shipping journal (%s) to replicas on %s\n", replMode, bound)
	}
	if *replicaOf != "" {
		if err := srv.StartReplica(*replicaOf); err != nil {
			fatal(err)
		}
		if *primaryClient != "" {
			srv.SetPrimaryClientAddr(*primaryClient)
		}
		fmt.Printf("bsd: read-only replica of %s\n", *replicaOf)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fatal(err)
	}
	if *metricsAddr != "" {
		expvar.Publish("bsd", expvar.Func(func() any { return srv.MetricsSnapshot() }))
		go func() {
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "bsd: metrics endpoint: %v\n", err)
			}
		}()
		fmt.Printf("bsd: metrics at http://%s/debug/vars\n", *metricsAddr)
	}
	fmt.Printf("bsd: serving schema %s (%d entries) on %s\n", name, dir.Len(), bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("bsd: shutting down")
	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		if err := srv.Snapshot(w); err != nil {
			fatal(err)
		}
		w.Flush()
		f.Close()
		fmt.Printf("bsd: snapshot written to %s\n", *snapshot)
	}
	srv.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bsd: %v\n", err)
	os.Exit(1)
}

// Bsgen generates synthetic workloads for the bounding-schema tool chain:
// the paper's white-pages schema and instance, scalable white-pages-shaped
// corpora, LDIF update streams, and random schemas for consistency
// experiments.
//
// Usage:
//
//	bsgen schema                 > whitepages.bs
//	bsgen figure1                > figure1.ldif
//	bsgen corpus  -n 10000       > corpus.ldif
//	bsgen updates -n 50 -corpus corpus.ldif > changes.ldif
//	bsgen randschema -classes 20 -required 10 -forbidden 5 > rand.bs
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"boundschema"
	"boundschema/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "schema":
		fmt.Print(boundschema.FormatSchema(workload.WhitePagesSchema(), "whitepages"))
	case "figure1":
		s := workload.WhitePagesSchema()
		err = boundschema.WriteLDIF(os.Stdout, workload.WhitePagesInstance(s))
	case "corpus":
		err = cmdCorpus(os.Args[2:])
	case "updates":
		err = cmdUpdates(os.Args[2:])
	case "randschema":
		err = cmdRandSchema(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "bsgen: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bsgen: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bsgen <command> [flags]

commands:
  schema      print the paper's white-pages bounding-schema
  figure1     print the Figure 1 instance as LDIF
  corpus      generate a legal white-pages-shaped corpus
  updates     generate an LDIF change stream for a corpus
  randschema  generate a random bounding-schema`)
}

func cmdCorpus(args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	n := fs.Int("n", 1000, "approximate number of entries")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)
	s := workload.WhitePagesSchema()
	d := workload.Corpus(s, rand.New(rand.NewSource(*seed)), *n)
	return boundschema.WriteLDIF(os.Stdout, d)
}

func cmdUpdates(args []string) error {
	fs := flag.NewFlagSet("updates", flag.ExitOnError)
	n := fs.Int("n", 20, "number of change records")
	seed := fs.Int64("seed", 1, "random seed")
	corpusPath := fs.String("corpus", "", "corpus the updates target (for delete DNs)")
	fs.Parse(args)
	s := workload.WhitePagesSchema()

	var d *boundschema.Directory
	if *corpusPath != "" {
		f, err := os.Open(*corpusPath)
		if err != nil {
			return err
		}
		defer f.Close()
		d, err = boundschema.ReadLDIF(f, s.Registry)
		if err != nil {
			return err
		}
	} else {
		d = workload.WhitePagesInstance(s)
	}
	rng := rand.New(rand.NewSource(*seed))
	groups := d.ClassEntries("orgGroup")
	persons := d.ClassEntries("person")
	for i := 0; i < *n; i++ {
		if rng.Intn(3) != 0 || len(persons) == 0 {
			parent := groups[rng.Intn(len(groups))]
			unit := fmt.Sprintf("ou=gen%d,%s", i, parent.DN())
			fmt.Printf("dn: %s\nchangetype: add\nobjectClass: orgUnit\nobjectClass: orgGroup\nobjectClass: top\n\n", unit)
			fmt.Printf("dn: uid=genp%d,%s\nchangetype: add\nobjectClass: person\nobjectClass: top\nname: generated %d\n\n", i, unit, i)
		} else {
			k := rng.Intn(len(persons))
			victim := persons[k]
			if victim.IsLeaf() {
				fmt.Printf("dn: %s\nchangetype: delete\n\n", victim.DN())
				persons = append(persons[:k], persons[k+1:]...)
			}
		}
	}
	return nil
}

func cmdRandSchema(args []string) error {
	fs := flag.NewFlagSet("randschema", flag.ExitOnError)
	classes := fs.Int("classes", 10, "number of core classes")
	required := fs.Int("required", 6, "number of required relationships")
	forbidden := fs.Int("forbidden", 3, "number of forbidden relationships")
	reqClasses := fs.Int("reqclasses", 2, "number of required classes")
	seed := fs.Int64("seed", 1, "random seed")
	deep := fs.Bool("deep", true, "bias toward deep hierarchies")
	fs.Parse(args)
	s := workload.RandomSchema(rand.New(rand.NewSource(*seed)), workload.SchemaConfig{
		Classes:         *classes,
		Required:        *required,
		Forbidden:       *forbidden,
		RequiredClasses: *reqClasses,
		Deep:            *deep,
	})
	fmt.Print(boundschema.FormatSchema(s, fmt.Sprintf("rand%d", *seed)))
	return nil
}

// Bsgen generates synthetic workloads for the bounding-schema tool chain:
// the paper's white-pages schema and instance, scalable white-pages-shaped
// corpora, LDIF update streams, and random schemas for consistency
// experiments.
//
// Usage:
//
//	bsgen schema                 > whitepages.bs
//	bsgen schema -scenario netpolicy > netpolicy.bs
//	bsgen figure1                > figure1.ldif
//	bsgen corpus  -n 10000       > corpus.ldif
//	bsgen corpus  -n 10000 -scenario semistructured > corpus.ldif
//	bsgen updates -n 50 -corpus corpus.ldif > changes.ldif
//	bsgen randschema -classes 20 -required 10 -forbidden 5 > rand.bs
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"boundschema"
	"boundschema/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "schema":
		err = cmdSchema(os.Args[2:])
	case "figure1":
		s := workload.WhitePagesSchema()
		err = boundschema.WriteLDIF(os.Stdout, workload.WhitePagesInstance(s))
	case "corpus":
		err = cmdCorpus(os.Args[2:])
	case "updates":
		err = cmdUpdates(os.Args[2:])
	case "randschema":
		err = cmdRandSchema(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "bsgen: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bsgen: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bsgen <command> [flags]

commands:
  schema      print a scenario's bounding-schema (-scenario whitepages|netpolicy|semistructured)
  figure1     print the Figure 1 instance as LDIF
  corpus      generate a legal corpus for a scenario (-scenario, -n, -seed)
  updates     generate an LDIF change stream for a corpus
  randschema  generate a random bounding-schema`)
}

// scenarioFuncs resolves a -scenario name to its schema and corpus
// generators (the same generators internal/loadgen drives, so a bsd
// seeded here matches what bsload's external mode expects).
func scenarioFuncs(name string) (func() *boundschema.Schema, func(*boundschema.Schema, *rand.Rand, int) *boundschema.Directory, error) {
	switch name {
	case "whitepages":
		return workload.WhitePagesSchema, workload.Corpus, nil
	case "netpolicy":
		return workload.NetPolicySchema, workload.NetPolicyCorpus, nil
	case "semistructured":
		return workload.SemiStructSchema, workload.SemiStructCorpus, nil
	}
	return nil, nil, fmt.Errorf("unknown scenario %q (whitepages, netpolicy, semistructured)", name)
}

func cmdSchema(args []string) error {
	fs := flag.NewFlagSet("schema", flag.ExitOnError)
	scenario := fs.String("scenario", "whitepages", "whitepages, netpolicy, or semistructured")
	fs.Parse(args)
	newSchema, _, err := scenarioFuncs(*scenario)
	if err != nil {
		return err
	}
	fmt.Print(boundschema.FormatSchema(newSchema(), *scenario))
	return nil
}

func cmdCorpus(args []string) error {
	fs := flag.NewFlagSet("corpus", flag.ExitOnError)
	n := fs.Int("n", 1000, "approximate number of entries")
	seed := fs.Int64("seed", 1, "random seed")
	scenario := fs.String("scenario", "whitepages", "whitepages, netpolicy, or semistructured")
	fs.Parse(args)
	newSchema, newCorpus, err := scenarioFuncs(*scenario)
	if err != nil {
		return err
	}
	s := newSchema()
	d := newCorpus(s, rand.New(rand.NewSource(*seed)), *n)
	return boundschema.WriteLDIF(os.Stdout, d)
}

func cmdUpdates(args []string) error {
	fs := flag.NewFlagSet("updates", flag.ExitOnError)
	n := fs.Int("n", 20, "number of change records")
	seed := fs.Int64("seed", 1, "random seed")
	corpusPath := fs.String("corpus", "", "corpus the updates target (for delete DNs)")
	fs.Parse(args)
	s := workload.WhitePagesSchema()

	var d *boundschema.Directory
	if *corpusPath != "" {
		f, err := os.Open(*corpusPath)
		if err != nil {
			return err
		}
		defer f.Close()
		d, err = boundschema.ReadLDIF(f, s.Registry)
		if err != nil {
			return err
		}
	} else {
		d = workload.WhitePagesInstance(s)
	}
	rng := rand.New(rand.NewSource(*seed))
	groups := d.ClassEntries("orgGroup")
	persons := d.ClassEntries("person")
	for i := 0; i < *n; i++ {
		if rng.Intn(3) != 0 || len(persons) == 0 {
			parent := groups[rng.Intn(len(groups))]
			unit := fmt.Sprintf("ou=gen%d,%s", i, parent.DN())
			fmt.Printf("dn: %s\nchangetype: add\nobjectClass: orgUnit\nobjectClass: orgGroup\nobjectClass: top\n\n", unit)
			fmt.Printf("dn: uid=genp%d,%s\nchangetype: add\nobjectClass: person\nobjectClass: top\nname: generated %d\n\n", i, unit, i)
		} else {
			k := rng.Intn(len(persons))
			victim := persons[k]
			if victim.IsLeaf() {
				fmt.Printf("dn: %s\nchangetype: delete\n\n", victim.DN())
				persons = append(persons[:k], persons[k+1:]...)
			}
		}
	}
	return nil
}

func cmdRandSchema(args []string) error {
	fs := flag.NewFlagSet("randschema", flag.ExitOnError)
	classes := fs.Int("classes", 10, "number of core classes")
	required := fs.Int("required", 6, "number of required relationships")
	forbidden := fs.Int("forbidden", 3, "number of forbidden relationships")
	reqClasses := fs.Int("reqclasses", 2, "number of required classes")
	seed := fs.Int64("seed", 1, "random seed")
	deep := fs.Bool("deep", true, "bias toward deep hierarchies")
	fs.Parse(args)
	s := workload.RandomSchema(rand.New(rand.NewSource(*seed)), workload.SchemaConfig{
		Classes:         *classes,
		Required:        *required,
		Forbidden:       *forbidden,
		RequiredClasses: *reqClasses,
		Deep:            *deep,
	})
	fmt.Print(boundschema.FormatSchema(s, fmt.Sprintf("rand%d", *seed)))
	return nil
}

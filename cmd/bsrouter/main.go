// Bsrouter fronts a set of bsd shard processes with one client-protocol
// endpoint: it loads a static shard map (subtree root → shard address),
// routes every DN-prefixed command to the owning shard over pooled
// connections, and fans reads out with merged, deterministically
// ordered results. Cross-shard legality follows the paper's Theorem 4.1
// decomposition: content, key and almost all structural checks stay
// shard-local (the shards were carved with spine ghosts — see
// `bschema carve` and DESIGN.md), and the router's coordinator audits
// the spanning relationships over the cut via per-shard boundary
// counts (the COUNT command). Transactions confined to one shard are
// replayed there atomically; a transaction, MOVE or DELETE that would
// span shards is refused with a single parseable ERR line.
//
// Usage:
//
//	bsrouter -map shards.conf [-addr 127.0.0.1:3890]
//
// Map config, one directive per line ('#' comments):
//
//	shard <name> <addr> <root-dn>[;<root-dn>...]
//	default <name> <addr>
//
// The default shard owns every DN outside the carved roots, including
// the real spine entries. Commands added or changed at the router:
//
//	SHARDMAP          the map, in the config format
//	STAT              aggregated across shards, ghost-corrected
//	COUNT <class> [child] [base=<dn>]   fanned out, ghost-corrected
//	CHECK             per-shard checks plus the cross-shard audit
//	VERIFY, SNAPSHOT  fanned out to every shard
//	QUERY, PROMOTE    refused (connect to a shard directly)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"boundschema/internal/shard"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:3890", "client protocol listen address")
		mapPath = flag.String("map", "", "shard map config file (required)")
	)
	flag.Parse()
	if *mapPath == "" {
		fmt.Fprintln(os.Stderr, "bsrouter: -map is required")
		flag.Usage()
		os.Exit(2)
	}
	m, err := shard.LoadMap(*mapPath)
	if err != nil {
		log.Fatalf("bsrouter: %v", err)
	}
	rt := shard.NewRouter(m)
	rt.SetErrorLog(log.New(os.Stderr, "bsrouter: ", log.LstdFlags))
	bound, err := rt.Listen(*addr)
	if err != nil {
		log.Fatalf("bsrouter: listen: %v", err)
	}
	log.Printf("bsrouter: serving on %s", bound)
	for _, l := range m.Render() {
		log.Printf("bsrouter: %s", l)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("bsrouter: shutting down")
	rt.Close()
}

package main

// E13 — the parallel legality engine (internal/core/parallel.go):
// sequential reference Check vs the sharded worker-pool Check at several
// worker counts, on a large white-pages corpus. The experiment verifies
// the determinism contract (byte-identical reports) before timing, and
// optionally records the numbers as JSON (-json BENCH_parallel.json) so
// later revisions have a perf trajectory to compare against.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"boundschema/internal/core"
	"boundschema/internal/workload"
)

type parallelBenchRow struct {
	Workers int     `json:"workers"`
	CheckNs int64   `json:"check_ns"`
	Speedup float64 `json:"speedup_vs_sequential"`
}

type parallelBenchResult struct {
	Experiment string `json:"experiment"`
	envInfo
	Entries          int                `json:"entries"`
	ReportsIdentical bool               `json:"reports_identical"`
	Rows             []parallelBenchRow `json:"rows"`
}

func runE13() {
	n := 50000
	if *quick {
		n = 8000
	}
	s := workload.WhitePagesSchema()
	s.DeclareKey("mail")
	d := workload.Corpus(s, rand.New(rand.NewSource(7)), n)
	d.EnsureEncoded()

	seq := core.NewChecker(s)
	seq.Concurrency = 1
	ref := seq.Check(d)
	base := timeIt(func() { seq.Check(d) })

	res := parallelBenchResult{
		Experiment:       "e14-parallel-legality",
		envInfo:          env("whitepages"),
		Entries:          d.Len(),
		ReportsIdentical: true,
		Rows: []parallelBenchRow{
			{Workers: 1, CheckNs: base.Nanoseconds(), Speedup: 1.0},
		},
	}

	workerSet := []int{2, 4, runtime.GOMAXPROCS(0)}
	if *parallel > 1 {
		workerSet = append(workerSet, *parallel)
	}
	fmt.Printf("|D| = %d, GOMAXPROCS = %d, reference verdict legal=%v\n\n",
		d.Len(), runtime.GOMAXPROCS(0), ref.Legal())
	fmt.Printf("%9s %14s %10s %10s\n", "workers", "check", "speedup", "identical")
	fmt.Printf("%9d %14v %9.2fx %10s\n", 1, base, 1.0, "ref")
	seen := map[int]bool{1: true}
	for _, w := range workerSet {
		if w < 2 || seen[w] {
			continue
		}
		seen[w] = true
		par := core.NewChecker(s)
		par.Concurrency = w
		identical := par.Check(d).String() == ref.String()
		if !identical {
			res.ReportsIdentical = false
		}
		el := timeIt(func() { par.Check(d) })
		speedup := float64(base) / float64(el)
		res.Rows = append(res.Rows, parallelBenchRow{Workers: w, CheckNs: el.Nanoseconds(), Speedup: speedup})
		fmt.Printf("%9d %14v %9.2fx %10v\n", w, el, speedup, identical)
	}
	if !res.ReportsIdentical {
		fmt.Println("!! parallel report diverged from the sequential reference — determinism bug")
	}
	fmt.Println("\nshape check: speedup approaches min(workers, GOMAXPROCS) once |D| amortizes the pool.")

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		fmt.Printf("results written to %s\n", *jsonOut)
	}
}

package main

// Trend — the cross-run report: `bsbench trend [dir]` reads every
// committed BENCH_*.json in the directory and prints each file's
// headline numbers on a couple of lines, so a reviewer (or a CI diff)
// can see the whole performance surface of a checkout without opening
// eight JSON files. Each known experiment has its own extractor keyed
// on the "experiment" field (BENCH_load.json, which has none, is
// recognized by its "runs" array); unknown files degrade to a key
// inventory rather than being skipped, so a new experiment is visible
// in the report before its extractor lands.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

func runTrend(dir string) {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "bsbench: trend: %v\n", err)
		os.Exit(1)
	}
	if len(files) == 0 {
		fmt.Fprintf(os.Stderr, "bsbench: trend: no BENCH_*.json under %s\n", dir)
		os.Exit(1)
	}
	sort.Strings(files)
	for _, f := range files {
		buf, err := os.ReadFile(f)
		if err != nil {
			fmt.Printf("%-24s unreadable: %v\n", filepath.Base(f), err)
			continue
		}
		var doc map[string]any
		if err := json.Unmarshal(buf, &doc); err != nil {
			fmt.Printf("%-24s not JSON: %v\n", filepath.Base(f), err)
			continue
		}
		exp := tstr(doc, "experiment")
		if exp == "" && len(tarr(doc, "runs")) > 0 {
			exp = "bsload"
		}
		fmt.Printf("%s  (%s, cpus=%.0f, gomaxprocs=%.0f)\n", filepath.Base(f), exp, tnum(doc, "cpus"), tnum(doc, "gomaxprocs"))
		for _, line := range trendLines(exp, doc) {
			fmt.Printf("  %s\n", line)
		}
	}
}

// trendLines picks each experiment's headline numbers. The selections
// mirror each experiment's own "shape check" line: the quantity whose
// regression would mean the subsystem's claim broke.
func trendLines(exp string, doc map[string]any) []string {
	var out []string
	switch exp {
	case "e14-parallel-legality":
		for _, r := range tarr(doc, "rows") {
			out = append(out, fmt.Sprintf("workers=%-2.0f check=%s speedup=%.2fx",
				tnum(r, "workers"), tdur(tnum(r, "check_ns")), tnum(r, "speedup_vs_sequential")))
		}
		out = append(out, fmt.Sprintf("reports_identical=%v", doc["reports_identical"]))
	case "e16-group-commit":
		for _, m := range tarr(doc, "modes") {
			out = append(out, fmt.Sprintf("%-14s %7.0f commits/s  commits/fsync=%.1f",
				tstr(m, "mode"), tnum(m, "commits_per_sec"), tnum(m, "commits_per_fsync")))
		}
		out = append(out, fmt.Sprintf("speedup group vs per-txn: %.2fx", tnum(doc, "speedup_group_vs_per_txn")))
	case "e17-crash-recovery":
		pts := tarr(doc, "points")
		for _, p := range pts {
			out = append(out, fmt.Sprintf("commits=%-6.0f recovery=%-10s ns/replayed=%.0f",
				tnum(p, "commits"), tdur(tnum(p, "recovery_ns")), tnum(p, "ns_per_replayed_commit")))
		}
		// Snapshotted points replay nothing and would read as a 0x ratio;
		// the linearity claim is about the points that actually replayed.
		var replayed []float64
		for _, p := range pts {
			if v := tnum(p, "ns_per_replayed_commit"); v > 0 {
				replayed = append(replayed, v)
			}
		}
		if len(replayed) >= 2 && replayed[0] > 0 {
			out = append(out, fmt.Sprintf("replay cost ratio largest/smallest journal: %.2fx (flat = linear replay)",
				replayed[len(replayed)-1]/replayed[0]))
		}
	case "e18-replication":
		for _, r := range tarr(doc, "reads") {
			out = append(out, fmt.Sprintf("replicas=%-2.0f %8.0f reads/s  speedup=%.2fx",
				tnum(r, "replicas"), tnum(r, "ops_per_sec"), tnum(r, "speedup_vs_primary_only")))
		}
		for _, c := range tarr(doc, "commits") {
			out = append(out, fmt.Sprintf("%-9s commit=%s/tx  slowdown=%.2fx  degraded=%v",
				tstr(c, "mode"), tdur(tnum(c, "ns_per_tx")), tnum(c, "slowdown_vs_async"), c["degraded"]))
		}
	case "e20-value-index":
		for _, p := range tarr(doc, "points") {
			out = append(out, fmt.Sprintf("entries=%-7.0f search p50=%-10s speedup vs scan=%.0fx",
				tnum(p, "entries"), tdur(tnum(p, "search_p50_ns")), tnum(p, "speedup_vs_scan_p50")))
		}
	case "e21-failover":
		for _, f := range tarr(doc, "failovers") {
			out = append(out, fmt.Sprintf("%-9s time-to-writable=%.1fms  acked_lost=%.0f",
				tstr(f, "mode"), tnum(f, "time_to_writable_ms"), tnum(f, "acked_writes_lost")))
		}
		if fc, ok := doc["fencing"].(map[string]any); ok {
			out = append(out, fmt.Sprintf("fencing: doomed_before=%.0f accepted_after=%.0f (must be 0) fence=%.2fms",
				tnum(fc, "doomed_writes_before_fence"), tnum(fc, "writes_accepted_after_fence"), tnum(fc, "time_to_fence_ms")))
		}
	case "e22-shard-scaling":
		for _, p := range tarr(doc, "points") {
			out = append(out, fmt.Sprintf("%-14s servers=%.0f %8.0f commits/s  speedup=%.2fx",
				tstr(p, "cluster"), tnum(p, "servers"), tnum(p, "commits_per_sec"), tnum(p, "speedup_vs_single")))
		}
	case "bsload":
		var best map[string]any
		committed := 0.0
		runs := tarr(doc, "runs")
		for _, r := range runs {
			committed += tnum(r, "committed")
			if best == nil || tnum(r, "throughput_ops_per_sec") > tnum(best, "throughput_ops_per_sec") {
				best = r
			}
		}
		out = append(out, fmt.Sprintf("%d runs, %.0f committed total", len(runs), committed))
		if best != nil {
			out = append(out, fmt.Sprintf("best: %s/%s on %s  %8.0f ops/s",
				tstr(best, "scenario"), tstr(best, "mix"), tstr(best, "cluster"), tnum(best, "throughput_ops_per_sec")))
		}
		if chaos := tarr(doc, "chaos"); len(chaos) > 0 {
			out = append(out, fmt.Sprintf("%d chaos scenarios, all ending in their convergence oracle", len(chaos)))
		}
	default:
		keys := make([]string, 0, len(doc))
		for k := range doc {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out = append(out, fmt.Sprintf("no extractor; keys: %v", keys))
	}
	return out
}

// tnum/tstr/tarr are tolerant accessors over the decoded JSON: a
// missing or differently-typed field reads as zero, so one malformed
// file cannot crash the whole report.
func tnum(m map[string]any, k string) float64 {
	if v, ok := m[k].(float64); ok {
		return v
	}
	return 0
}

func tstr(m map[string]any, k string) string {
	if v, ok := m[k].(string); ok {
		return v
	}
	return ""
}

func tarr(m map[string]any, k string) []map[string]any {
	raw, ok := m[k].([]any)
	if !ok {
		return nil
	}
	var out []map[string]any
	for _, e := range raw {
		if em, ok := e.(map[string]any); ok {
			out = append(out, em)
		}
	}
	return out
}

// tdur renders nanoseconds human-readably without pretending to more
// precision than a load test has.
func tdur(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// Bsbench regenerates the paper's analytical results (DESIGN.md
// experiment index). The paper's evaluation is analytical — worked
// example, translation tables and theorems — so each experiment either
// re-derives a table (Figures 4 and 5), validates an equivalence over
// randomized inputs, or measures the complexity shape a theorem claims.
//
// Usage:
//
//	bsbench all            # run every experiment
//	bsbench e1 ... e10     # run one experiment
//	bsbench -quick all     # smaller sweeps (CI-sized)
//	bsbench trend [dir]    # cross-run headline report over BENCH_*.json
//
// Experiments:
//
//	e1  Figures 1-3: the worked example and seeded violations
//	e2  Figure 4: element satisfaction ⟺ query emptiness
//	e3  Theorem 3.1: legality testing is linear in |D|
//	e4  Section 3.2: naive quadratic baseline vs query reduction
//	e5  Theorem 4.1: transaction normalization is order-independent
//	e6  Figure 5 / Theorem 4.2: incremental vs full update checks
//	e7  Section 4 remark: required classes under deletion, with counts
//	e8  Theorem 5.1: soundness of the inference system
//	e9  Theorem 5.2: consistency decision is polynomial
//	e10 Sections 5.1-5.2: the inconsistency taxonomy
//	e12 ablation: extension rules vs the pairwise reconstruction
//	e13 Section 7 future work: schema-aided query optimization
//	e14 parallel legality engine: sequential vs sharded Check
//	e16 group commit: batched vs per-transaction journal fsync
//	e17 crash recovery: cold-start cost vs journal length
//	e18 streaming replication: read fan-out and the semi-sync write price
//	e20 attribute-value indexes: SEARCH latency vs instance size
//	e21 epoch-fenced failover: time-to-writable, acked-write loss, fencing
//	e22 subtree sharding: aggregate write throughput vs shard count
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
)

// envInfo stamps every experiment JSON with the hardware context and
// the scenario/schema the numbers were measured on, so committed
// baselines are comparable across machines and corpora.
type envInfo struct {
	CPUs       int    `json:"cpus"`
	Gomaxprocs int    `json:"gomaxprocs"`
	Scenario   string `json:"scenario"`
}

func env(scenario string) envInfo {
	return envInfo{CPUs: runtime.NumCPU(), Gomaxprocs: runtime.GOMAXPROCS(0), Scenario: scenario}
}

var (
	quick                = flag.Bool("quick", false, "smaller sweeps")
	parallel             = flag.Int("parallel", 0, "extra worker count for e14 (0 = GOMAXPROCS sweep only)")
	jsonOut              = flag.String("json", "", "write e14 results as JSON to this file")
	jsonE16              = flag.String("json-e16", "", "write e16 results as JSON to this file")
	jsonE17              = flag.String("json-e17", "", "write e17 results as JSON to this file")
	jsonE18              = flag.String("json-e18", "", "write e18 results as JSON to this file")
	jsonE20              = flag.String("json-e20", "", "write e20 results as JSON to this file")
	jsonE21              = flag.String("json-e21", "", "write e21 results as JSON to this file")
	jsonE22              = flag.String("json-e22", "", "write e22 results as JSON to this file")
	checkRecoveryScaling = flag.Bool("check-recovery-scaling", false,
		"e17: exit non-zero unless ns/replayed-commit at the largest journal is < 3x the smallest (regression gate)")
	checkIndexScaling = flag.Bool("check-index-scaling", false,
		"e20: exit non-zero unless index-probe p50 at the largest instance is < 3x the smallest (regression gate)")
)

type experiment struct {
	id    string
	title string
	run   func()
}

func main() {
	flag.Parse()
	exps := []experiment{
		{"e1", "Figures 1-3: worked example", runE1},
		{"e2", "Figure 4: translation equivalence", runE2},
		{"e3", "Theorem 3.1: linear legality testing", runE3},
		{"e4", "Section 3.2: naive baseline vs query reduction", runE4},
		{"e5", "Theorem 4.1: normalization modularity", runE5},
		{"e6", "Figure 5 / Theorem 4.2: incremental update checks", runE6},
		{"e7", "Section 4 remark: count-indexed required classes", runE7},
		{"e8", "Theorem 5.1: inference soundness", runE8},
		{"e9", "Theorem 5.2: polynomial consistency", runE9},
		{"e10", "Sections 5.1-5.2: inconsistency taxonomy", runE10},
		{"e12", "Ablation: extension rules vs pairwise reconstruction", runE11},
		{"e13", "Section 7: schema-aided query optimization", runE12},
		{"e14", "Parallel legality engine: sequential vs sharded Check", runE13},
		// e15 (metrics overhead) and e19 (bsload convergence) live in
		// EXPERIMENTS.md as Go benchmarks / the bsload harness; ids here
		// match the doc's section numbers.
		{"e16", "Group commit: batched vs per-transaction journal fsync", runE16},
		{"e17", "Crash recovery: cold-start cost vs journal length", runE17},
		{"e18", "Streaming replication: read fan-out and the semi-sync write price", runE18},
		{"e20", "Attribute-value indexes: SEARCH latency vs instance size", runE20},
		{"e21", "Epoch-fenced failover: time-to-writable, acked-write loss, fencing", runE21},
		{"e22", "Subtree sharding: aggregate write throughput vs shard count", runE22},
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: bsbench [-quick] all | e1 ... e14 | e16 | e17 | e18 | e20 | e21 | e22 | trend [dir]")
		os.Exit(2)
	}
	if args[0] == "trend" {
		dir := "."
		if len(args) > 1 {
			dir = args[1]
		}
		runTrend(dir)
		return
	}
	want := make(map[string]bool)
	for _, a := range args {
		want[a] = true
	}
	ran := false
	for _, e := range exps {
		if want["all"] || want[e.id] {
			fmt.Printf("==== %s: %s ====\n", e.id, e.title)
			e.run()
			fmt.Println()
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "bsbench: no such experiment %v\n", args)
		os.Exit(2)
	}
}

package main

import (
	"fmt"
	"math/rand"
	"time"

	"boundschema/internal/core"
	"boundschema/internal/dirtree"
	"boundschema/internal/hquery"
	"boundschema/internal/txn"
	"boundschema/internal/workload"
)

// ---------------------------------------------------------------------
// E1 — Figures 1-3: the worked example, plus seeded violations showing
// which schema element each mutation breaks.

func runE1() {
	s := workload.WhitePagesSchema()
	d := workload.WhitePagesInstance(s)
	checker := core.NewChecker(s)
	fmt.Printf("Figure 1 instance: %d entries, legal=%v\n\n", d.Len(), checker.Check(d).Legal())

	type mutation struct {
		name string
		mut  func(d *dirtree.Directory)
	}
	byDN := func(d *dirtree.Directory, dn string) *dirtree.Entry { return d.ByDN(dn) }
	muts := []mutation{
		{"drop laks' name (required attribute)", func(d *dirtree.Directory) {
			byDN(d, "uid=laks,ou=databases,ou=attLabs,o=att").SetValues("name")
		}},
		{"suciu gains class packetRouter (undeclared)", func(d *dirtree.Directory) {
			byDN(d, "uid=suciu,ou=databases,ou=attLabs,o=att").AddClass("packetRouter")
		}},
		{"databases gains aux facultyMember (not allowed for orgUnit)", func(d *dirtree.Directory) {
			byDN(d, "ou=databases,ou=attLabs,o=att").AddClass("facultyMember")
		}},
		{"suciu loses superclass person (single inheritance)", func(d *dirtree.Directory) {
			byDN(d, "uid=suciu,ou=databases,ou=attLabs,o=att").RemoveClass("person")
		}},
		{"laks gains a child (person ⇥ch top)", func(d *dirtree.Directory) {
			_, _ = d.AddChild(byDN(d, "uid=laks,ou=databases,ou=attLabs,o=att"), "cn=gadget", "top")
		}},
		{"empty orgUnit added (orgGroup →de person)", func(d *dirtree.Directory) {
			_, _ = d.AddChild(byDN(d, "ou=attLabs,o=att"), "ou=empty", "orgUnit", "orgGroup", "top")
		}},
		{"orgUnit at forest root (orgUnit →pa orgGroup)", func(d *dirtree.Directory) {
			_, _ = d.AddRoot("ou=stray", "orgUnit", "orgGroup", "top")
		}},
	}
	fmt.Printf("%-58s %s\n", "mutation", "violations detected")
	for _, m := range muts {
		dd := d.Clone()
		m.mut(dd)
		r := checker.Check(dd)
		kinds := map[string]bool{}
		for _, v := range r.Violations {
			kinds[v.Kind.String()] = true
		}
		var ks []string
		for k := range kinds {
			ks = append(ks, k)
		}
		fmt.Printf("%-58s %v\n", m.name, ks)
	}
}

// ---------------------------------------------------------------------
// E2 — Figure 4: for every structure-schema element kind, satisfaction
// per Definition 2.6 must coincide with (non-)emptiness of the translated
// hierarchical selection query.

func runE2() {
	rounds, size := 400, 120
	if *quick {
		rounds, size = 80, 60
	}
	classes := []string{"a", "b", "c", core.ClassTop}
	kinds := []struct {
		name string
		el   func(src, tgt string) core.Element
	}{
		{"ci →ch cj", func(s, t string) core.Element { return core.RequiredRel{Source: s, Axis: core.AxisChild, Target: t} }},
		{"cj ←pa ci", func(s, t string) core.Element { return core.RequiredRel{Source: s, Axis: core.AxisParent, Target: t} }},
		{"ci →de cj", func(s, t string) core.Element { return core.RequiredRel{Source: s, Axis: core.AxisDesc, Target: t} }},
		{"cj ←an ci", func(s, t string) core.Element { return core.RequiredRel{Source: s, Axis: core.AxisAnc, Target: t} }},
		{"ci ⇥ch cj", func(s, t string) core.Element { return core.ForbiddenRel{Upper: s, Axis: core.AxisChild, Lower: t} }},
		{"ci ⇥de cj", func(s, t string) core.Element { return core.ForbiddenRel{Upper: s, Axis: core.AxisDesc, Lower: t} }},
		{"c⇓", func(s, _ string) core.Element { return core.RequiredClass{Class: s} }},
	}
	fmt.Printf("%-10s %10s %10s %10s\n", "element", "checked", "satisfied", "agree")
	rng := rand.New(rand.NewSource(42))
	for _, k := range kinds {
		checked, satisfied, agree := 0, 0, 0
		for r := 0; r < rounds; r++ {
			// Mix tiny and mid-size instances so both satisfied and
			// violated elements occur.
			d := randomMixedInstance(rng, rng.Intn(size)+3, classes)
			b := hquery.NewBinding(d)
			src := classes[rng.Intn(len(classes))]
			tgt := classes[rng.Intn(len(classes))]
			el := k.el(src, tgt)
			sat := core.Satisfies(d, el)
			var queryVerdict bool
			switch e := el.(type) {
			case core.RequiredRel:
				queryVerdict = hquery.Empty(core.RequiredRelQuery(e), b)
			case core.ForbiddenRel:
				queryVerdict = hquery.Empty(core.ForbiddenRelQuery(e), b)
			case core.RequiredClass:
				queryVerdict = !hquery.Empty(core.RequiredClassQuery(e.Class), b)
			}
			checked++
			if sat {
				satisfied++
			}
			if sat == queryVerdict {
				agree++
			}
		}
		fmt.Printf("%-10s %10d %10d %9.1f%%\n", k.name, checked, satisfied, 100*float64(agree)/float64(checked))
	}
	fmt.Println("\nshape check: every row must agree 100.0% (Figure 4 correctness).")
}

func randomMixedInstance(rng *rand.Rand, n int, classes []string) *dirtree.Directory {
	d := dirtree.New(nil)
	var all []*dirtree.Entry
	for i := 0; i < n; i++ {
		cs := []string{core.ClassTop}
		for _, c := range classes {
			if c != core.ClassTop && rng.Intn(3) == 0 {
				cs = append(cs, c)
			}
		}
		var e *dirtree.Entry
		var err error
		if len(all) == 0 || rng.Intn(8) == 0 {
			e, err = d.AddRoot(fmt.Sprintf("r=%d", i), cs...)
		} else {
			e, err = d.AddChild(all[rng.Intn(len(all))], fmt.Sprintf("n=%d", i), cs...)
		}
		if err != nil {
			panic(err)
		}
		all = append(all, e)
	}
	return d
}

// ---------------------------------------------------------------------
// E3 — Theorem 3.1: full legality testing scales linearly with |D|.

func runE3() {
	sizes := []int{1000, 2000, 5000, 10000, 20000, 50000, 100000}
	if *quick {
		sizes = []int{1000, 2000, 5000, 10000}
	}
	s := workload.WhitePagesSchema()
	checker := core.NewChecker(s)
	fmt.Printf("%10s %14s %14s %12s\n", "|D|", "check total", "per entry", "legal")
	for _, n := range sizes {
		d := workload.Corpus(s, rand.New(rand.NewSource(7)), n)
		d.EnsureEncoded()
		reps := 3
		var best time.Duration
		legal := true
		for r := 0; r < reps; r++ {
			start := time.Now()
			legal = checker.Check(d).Legal()
			el := time.Since(start)
			if r == 0 || el < best {
				best = el
			}
		}
		fmt.Printf("%10d %14v %14.1f %12v\n", d.Len(), best, float64(best.Nanoseconds())/float64(d.Len()), legal)
	}
	fmt.Println("\nshape check: ns/entry stays roughly flat as |D| grows 100x (linear total).")
}

// ---------------------------------------------------------------------
// E4 — Section 3.2: the naive O((|Er|+|Ef|)·|D|²) pairwise baseline vs
// the query reduction.

func runE4() {
	sizes := []int{200, 500, 1000, 2000, 4000}
	if *quick {
		sizes = []int{200, 500, 1000}
	}
	s := workload.WhitePagesSchema()
	checker := core.NewChecker(s)
	fmt.Printf("%8s %14s %14s %10s\n", "|D|", "naive", "query-based", "speedup")
	for _, n := range sizes {
		d := workload.Corpus(s, rand.New(rand.NewSource(7)), n)
		d.EnsureEncoded()

		start := time.Now()
		rn := core.NaiveStructureCheck(s, d)
		naive := time.Since(start)

		start = time.Now()
		rq := checker.CheckStructure(d)
		query := time.Since(start)

		if rn.Legal() != rq.Legal() {
			fmt.Println("!! verdict mismatch — differential bug")
		}
		fmt.Printf("%8d %14v %14v %9.1fx\n", d.Len(), naive, query, float64(naive)/float64(query))
	}
	fmt.Println("\nshape check: speedup grows roughly linearly with |D| (quadratic vs linear).")
}

// ---------------------------------------------------------------------
// E5 — Theorem 4.1: the transaction verdict is independent of operation
// order, and equals the whole-transaction recheck.

func runE5() {
	rounds := 300
	if *quick {
		rounds = 60
	}
	s := workload.WhitePagesSchema()
	rng := rand.New(rand.NewSource(11))
	agree, permAgree := 0, 0
	for r := 0; r < rounds; r++ {
		d := workload.Corpus(s, rng, 60)
		tx := randomTx(s, d, rng)

		applyVerdict := func(ops []txn.Op) (bool, bool) {
			dd := d.Clone()
			a := txn.NewApplier(s)
			rep, err := a.Apply(dd, &txn.Transaction{Ops: ops})
			if err != nil {
				return false, false
			}
			return true, rep.Legal()
		}
		okA, vA := applyVerdict(tx.Ops)

		full := d.Clone()
		af := txn.NewApplier(s)
		af.Mode = txn.CheckFull
		repF, errF := af.Apply(full, tx)
		if okA == (errF == nil) && (errF != nil || vA == repF.Legal()) {
			agree++
		}

		// Shuffle op order; normalization must give the same verdict
		// whenever the permuted sequence is itself well-formed.
		perm := append([]txn.Op(nil), tx.Ops...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		okP, vP := applyVerdict(perm)
		if !okP || (okA && vP == vA) {
			permAgree++
		}
	}
	fmt.Printf("transactions checked:                 %d\n", rounds)
	fmt.Printf("incremental == whole-txn recheck:     %d/%d\n", agree, rounds)
	fmt.Printf("verdict invariant under permutation:  %d/%d\n", permAgree, rounds)
	fmt.Println("\nshape check: both counters must equal the number checked.")
}

func randomTx(s *core.Schema, d *dirtree.Directory, rng *rand.Rand) *txn.Transaction {
	tx := &txn.Transaction{}
	groups := d.ClassEntries("orgGroup")
	persons := d.ClassEntries("person")
	n := rng.Intn(4) + 1
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0:
			parent := groups[rng.Intn(len(groups))]
			dn := fmt.Sprintf("ou=x%d,%s", i, parent.DN())
			tx.Add(dn, []string{"orgUnit", "orgGroup", "top"}, nil)
			tx.Add("uid=xp"+fmt.Sprint(i)+","+dn, []string{"person", "top"},
				map[string][]dirtree.Value{"name": {dirtree.String("x")}})
		case 1:
			parent := groups[rng.Intn(len(groups))]
			tx.Add(fmt.Sprintf("uid=y%d,%s", i, parent.DN()), []string{"person", "top"},
				map[string][]dirtree.Value{"name": {dirtree.String("y")}})
		default:
			p := persons[rng.Intn(len(persons))]
			if p.IsLeaf() {
				already := false
				for _, op := range tx.Ops {
					if op.DN == p.DN() {
						already = true
					}
				}
				if !already {
					tx.Delete(p.DN())
				}
			}
		}
	}
	return tx
}

// ---------------------------------------------------------------------
// E6 — Figure 5 / Theorem 4.2: re-derive the Y/N table and measure the
// incremental checks against full rechecks.

func runE6() {
	n := 50000
	if *quick {
		n = 5000
	}
	s := workload.WhitePagesSchema()
	rng := rand.New(rand.NewSource(5))
	d := workload.Corpus(s, rng, n)
	d.EnsureEncoded()

	// Print the re-derived Figure 5 table.
	fmt.Println("Figure 5 (re-derived): incremental testability")
	fmt.Printf("%-12s %-8s %-8s\n", "element", "insert", "delete")
	for _, ax := range []core.Axis{core.AxisChild, core.AxisParent, core.AxisDesc, core.AxisAnc} {
		rel := core.RequiredRel{Source: "ci", Axis: ax, Target: "cj"}
		fmt.Printf("%-12s %-8s %-8s\n",
			rel.ElementString(), yn(core.InsertCheckRel(rel).Incremental), yn(core.DeleteCheckRel(rel).Incremental))
	}
	for _, ax := range []core.Axis{core.AxisChild, core.AxisDesc} {
		f := core.ForbiddenRel{Upper: "ci", Axis: ax, Lower: "cj"}
		fmt.Printf("%-12s %-8s %-8s\n",
			f.ElementString(), yn(core.InsertCheckForb(f).Incremental), yn(core.DeleteCheckForb(f).Incremental))
	}
	fmt.Printf("%-12s %-8s %-8s   (yes with a count index)\n", "c⇓",
		yn(core.InsertCheckClass("c").Incremental), yn(core.DeleteCheckClass("c").Incremental))

	// Timing: insertion of a small subtree, per-element incremental
	// check vs full instance recheck.
	frag := workload.UpdateStream(s, rng, 8)
	groups := d.ClassEntries("orgGroup")
	root, err := d.GraftSubtree(groups[len(groups)/2], frag.Roots()[0])
	if err != nil {
		panic(err)
	}
	d.EnsureEncoded()
	b := hquery.DeltaBinding(d, root)

	fmt.Printf("\ninsertion of |Δ|=8 into |D|=%d:\n", d.Len())
	fmt.Printf("%-28s %14s %14s %10s\n", "element", "incremental", "full recheck", "speedup")
	for _, rel := range s.Structure.RequiredRels() {
		chk := core.InsertCheckRel(rel)
		inc := timeIt(func() { chk.Holds(b) })
		full := timeIt(func() { hquery.Empty(core.RequiredRelQuery(rel), hquery.NewBinding(d)) })
		fmt.Printf("%-28s %14v %14v %9.1fx\n", rel.ElementString(), inc, full, float64(full)/float64(inc))
	}
	for _, f := range s.Structure.ForbiddenRels() {
		chk := core.InsertCheckForb(f)
		inc := timeIt(func() { chk.Holds(b) })
		full := timeIt(func() { hquery.Empty(core.ForbiddenRelQuery(f), hquery.NewBinding(d)) })
		fmt.Printf("%-28s %14v %14v %9.1fx\n", f.ElementString(), inc, full, float64(full)/float64(inc))
	}

	// Deletion: the N rows cost like a full recheck; upward rows are free.
	fmt.Printf("\ndeletion checks on the same instance:\n")
	fmt.Printf("%-28s %14s %14s\n", "element", "figure-5 cost", "narrowed cost")
	victim := root
	bDel := hquery.DeltaBinding(d, victim)
	app := txn.NewApplier(s)
	app.NarrowDeletes = true
	for _, rel := range s.Structure.RequiredRels() {
		chk := core.DeleteCheckRel(rel)
		fig5 := timeIt(func() { chk.Holds(bDel) })
		if chk.Incremental {
			fmt.Printf("%-28s %14v %14s\n", rel.ElementString(), fig5, "(no check)")
			continue
		}
		narrowed := timeIt(func() { txn.NarrowedDeleteCheck(d, victim, rel) })
		fmt.Printf("%-28s %14v %14v\n", rel.ElementString(), fig5, narrowed)
	}
	fmt.Println("\nshape check: insertion speedups grow with |D|; the deletion N rows cost")
	fmt.Println("like a full recheck, which the (beyond-paper) narrowed check avoids.")
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func timeIt(f func()) time.Duration {
	const reps = 5
	best := time.Duration(1 << 62)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if el := time.Since(start); el < best {
			best = el
		}
	}
	return best
}

// ---------------------------------------------------------------------
// E7 — required classes under deletion: scan vs count index.

func runE7() {
	n := 50000
	if *quick {
		n = 5000
	}
	s := workload.WhitePagesSchema()
	rng := rand.New(rand.NewSource(5))
	d := workload.Corpus(s, rng, n)
	d.EnsureEncoded()
	counts := txn.NewCountIndex(d)
	persons := d.ClassEntries("person")
	victim := persons[len(persons)/2]
	b := hquery.DeltaBinding(d, victim)

	scan := timeIt(func() {
		for _, c := range s.Structure.RequiredClasses() {
			core.DeleteCheckClass(c).Holds(b)
		}
	})
	indexed := timeIt(func() {
		for _, c := range s.Structure.RequiredClasses() {
			_ = counts.Count(c) - 1
		}
	})
	fmt.Printf("|D|=%d, deleting one person, %d required classes:\n", d.Len(), len(s.Structure.RequiredClasses()))
	fmt.Printf("  survivor scan (Figure 5 'N' row): %v\n", scan)
	fmt.Printf("  count index (Section 4 remark):   %v\n", indexed)
	fmt.Printf("  speedup: %.0fx\n", float64(scan)/float64(indexed))
	fmt.Println("\nshape check: the count index is orders of magnitude faster and O(|Δ|).")
}

// ---------------------------------------------------------------------
// E8 — Theorem 5.1: everything the inference system derives holds in
// every legal instance we can build.

func runE8() {
	rounds := 200
	if *quick {
		rounds = 40
	}
	rng := rand.New(rand.NewSource(13))
	schemas, derived, holds := 0, 0, 0
	for r := 0; r < rounds; r++ {
		s := workload.RandomSchema(rng, workload.SchemaConfig{
			Classes: rng.Intn(6) + 2, Required: rng.Intn(5) + 1,
			Forbidden: rng.Intn(3), RequiredClasses: rng.Intn(2) + 1, Deep: true,
		})
		if !s.Consistent() {
			continue
		}
		d, err := core.Materialize(s)
		if err != nil {
			fmt.Printf("!! consistent schema failed to materialize: %v\n", err)
			continue
		}
		schemas++
		for _, el := range core.Infer(s).Derived() {
			derived++
			if core.Satisfies(d, el) {
				holds++
			}
		}
	}
	fmt.Printf("consistent random schemas:     %d\n", schemas)
	fmt.Printf("derived elements checked:      %d\n", derived)
	fmt.Printf("holding in the witness:        %d\n", holds)
	fmt.Println("\nshape check: every derived element holds (soundness).")
}

// ---------------------------------------------------------------------
// E9 — Theorem 5.2: the consistency decision is polynomial in the schema
// size, and detects the seeded inconsistent families at every scale.

func runE9() {
	sizes := []int{10, 20, 50, 100, 200, 400}
	if *quick {
		sizes = []int{10, 20, 50, 100}
	}
	fmt.Printf("%8s %8s %8s %14s %12s %10s\n", "|C|", "|Er|", "|Ef|", "decide", "facts", "verdict")
	rng := rand.New(rand.NewSource(17))
	for _, n := range sizes {
		s := workload.RandomSchema(rng, workload.SchemaConfig{
			Classes: n, Required: n, Forbidden: n / 2, RequiredClasses: 3, Deep: true,
		})
		var res core.ConsistencyResult
		el := timeIt(func() { res = core.CheckConsistency(s) })
		fmt.Printf("%8d %8d %8d %14v %12d %10v\n",
			n, len(s.Structure.RequiredRels()), len(s.Structure.ForbiddenRels()), el, res.Facts, res.Consistent)
	}
	fmt.Println("\nseeded inconsistent families (must all be detected):")
	fmt.Printf("%8s %14s %14s\n", "k", "cycle family", "contra family")
	for _, k := range sizes {
		var v1, v2 bool
		t1 := timeIt(func() { v1 = core.CheckConsistency(workload.CyclicSchema(k)).Consistent })
		t2 := timeIt(func() { v2 = core.CheckConsistency(workload.ContradictorySchema(k)).Consistent })
		fmt.Printf("%8d %10v %3v %10v %3v\n", k, t1, !v1, t2, !v2)
	}
	fmt.Println("\nshape check: runtime grows polynomially (roughly with the closed-fact")
	fmt.Println("count), and every seeded family is flagged inconsistent (true).")
}

// ---------------------------------------------------------------------
// E10 — the inconsistency taxonomy of Sections 5.1-5.2.

func runE10() {
	cases := []struct {
		name  string
		build func() *core.Schema
	}{
		{"pure structure cycle (5.1)", func() *core.Schema {
			s := flat("c1", "c2")
			s.Structure.RequireClass("c1")
			s.Structure.RequireRel("c1", core.AxisChild, "c2")
			s.Structure.RequireRel("c2", core.AxisDesc, "c1")
			return s
		}},
		{"hierarchy-induced cycle (5.1)", func() *core.Schema {
			s := core.NewSchema()
			mustCore(s, "c2", core.ClassTop)
			mustCore(s, "c1", "c2")
			mustCore(s, "c4", core.ClassTop)
			mustCore(s, "c3", "c4")
			mustCore(s, "c5", "c1")
			s.Structure.RequireClass("c1")
			s.Structure.RequireRel("c2", core.AxisChild, "c3")
			s.Structure.RequireRel("c4", core.AxisDesc, "c5")
			return s
		}},
		{"direct contradiction (5.2)", func() *core.Schema {
			s := flat("c1", "c2")
			s.Structure.RequireClass("c1")
			s.Structure.RequireRel("c1", core.AxisDesc, "c2")
			_ = s.Structure.ForbidRel("c1", core.AxisDesc, "c2")
			return s
		}},
		{"hierarchy-induced contradiction (5.2)", func() *core.Schema {
			s := core.NewSchema()
			mustCore(s, "c3", core.ClassTop)
			mustCore(s, "c2", "c3")
			mustCore(s, "c1", core.ClassTop)
			s.Structure.RequireClass("c1")
			s.Structure.RequireRel("c1", core.AxisChild, "c2")
			_ = s.Structure.ForbidRel("c1", core.AxisChild, "c3")
			return s
		}},
		{"cycle without c⇓ (footnote 3: consistent)", func() *core.Schema {
			s := flat("c1", "c2")
			s.Structure.RequireRel("c1", core.AxisChild, "c2")
			s.Structure.RequireRel("c2", core.AxisDesc, "c1")
			return s
		}},
	}
	fmt.Printf("%-45s %-12s %s\n", "case", "consistent", "rules on the ⊥ derivation")
	for _, c := range cases {
		s := c.build()
		res := core.CheckConsistency(s)
		rules := "-"
		if !res.Consistent {
			rules = rulesOn(res.Explanation)
		}
		fmt.Printf("%-45s %-12v %s\n", c.name, res.Consistent, rules)
	}
	fmt.Println("\nshape check: the four narrative cases are inconsistent, the footnote")
	fmt.Println("case is consistent.")
}

func flat(classes ...string) *core.Schema {
	s := core.NewSchema()
	for _, c := range classes {
		mustCore(s, c, core.ClassTop)
	}
	return s
}

func mustCore(s *core.Schema, c, super string) {
	if err := s.Classes.AddCore(c, super); err != nil {
		panic(err)
	}
}

// rulesOn lists the distinct inference-rule tags appearing in a
// derivation, in first-use order.
func rulesOn(explanation string) string {
	seen := map[string]bool{}
	var order []string
	for i := 0; i+1 < len(explanation); i++ {
		if explanation[i] != '[' {
			continue
		}
		for j := i + 1; j < len(explanation); j++ {
			if explanation[j] == ']' {
				tag := explanation[i+1 : j]
				if tag != "given" && !seen[tag] {
					seen[tag] = true
					order = append(order, tag)
				}
				i = j
				break
			}
		}
	}
	out := ""
	for k, t := range order {
		if k > 0 {
			out += ","
		}
		out += t
	}
	return out
}

// ---------------------------------------------------------------------
// E11 — ablation: which inconsistencies need the extension rules beyond
// the pairwise Figure 6/7 reconstruction.

func runE11() {
	fmt.Printf("%-52s %-10s %-10s %s\n", "inconsistent case", "pairwise", "full", "rules used")
	for _, hc := range workload.HardCases() {
		pw := core.InferWith(hc.Schema, core.InferOptions{PairwiseOnly: true})
		full := core.InferWith(hc.Schema, core.InferOptions{})
		rules := "-"
		if full.Inconsistent() {
			rules = rulesOn(full.ExplainInconsistency())
		}
		fmt.Printf("%-52s %-10s %-10s %s\n", hc.Name, detects(pw.Inconsistent()), detects(full.Inconsistent()), rules)
	}
	fmt.Println("\nshape check: the full system detects every case; the pairwise subset")
	fmt.Println("misses all of them (each case isolates one extension rule group).")
}

func detects(b bool) string {
	if b {
		return "detected"
	}
	return "missed"
}

// ---------------------------------------------------------------------
// E12 — §7 future work: schema-aided query optimization.

func runE12() {
	n := 50000
	if *quick {
		n = 5000
	}
	s := workload.WhitePagesSchema()
	d := workload.Corpus(s, rand.New(rand.NewSource(7)), n)
	d.EnsureEncoded()
	b := hquery.NewBinding(d)
	facts := core.NewQueryFacts(s)

	fmt.Println("elements the schema itself guarantees (violation query folds to ∅):")
	for _, el := range core.GuaranteedElements(s) {
		fmt.Printf("  %s\n", el.ElementString())
	}

	queries := []struct {
		name string
		q    hquery.Query
	}{
		{"Q1 (orgGroup without person descendant)",
			hquery.MustParse("(minus (select (objectClass=orgGroup)) (desc (select (objectClass=orgGroup)) (select (objectClass=person))))")},
		{"persons under an organization",
			hquery.MustParse("(anc (select (objectClass=person)) (select (objectClass=organization)))")},
		{"entries whose parent is a person",
			hquery.MustParse("(parent (select (objectClass=top)) (select (objectClass=person)))")},
		{"orgUnits with researcher descendants (no guarantee)",
			hquery.MustParse("(desc (select (objectClass=orgUnit)) (select (objectClass=researcher)))")},
	}
	fmt.Printf("\n|D|=%d:\n%-46s %12s %12s %8s\n", d.Len(), "query", "raw", "optimized", "folded")
	for _, qq := range queries {
		opt := hquery.Optimize(qq.q, facts)
		raw := timeIt(func() { hquery.Eval(qq.q, b) })
		optT := timeIt(func() { hquery.Eval(opt, b) })
		folded := "no"
		if hquery.String(opt) != hquery.String(qq.q) {
			folded = "yes"
		}
		fmt.Printf("%-46s %12v %12v %8s\n", qq.name, raw, optT, folded)
	}
	fmt.Println("\nshape check: queries the schema guarantees fold partially or fully and")
	fmt.Println("evaluate faster; unguaranteed queries are untouched.")
}

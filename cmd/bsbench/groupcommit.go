package main

// E16 — group-commit durability (internal/server/groupcommit.go): the
// same concurrent-writer workload against two otherwise identical
// journaled servers, one batching commits into shared fsyncs (group
// commit, the default) and one syncing per transaction (PR 2's
// behaviour, -group-commit=false). Both run with the same artificial
// fsync latency so the experiment measures the pipeline, not the disk.
// A reader hammers the server throughout, probing whether an in-flight
// fsync ever blocks reads. Optionally records the numbers as JSON
// (-json-e16 BENCH_groupcommit.json) for a perf trajectory.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"boundschema/internal/server"
	"boundschema/internal/workload"
)

type groupCommitMode struct {
	Mode            string  `json:"mode"`
	Writers         int     `json:"writers"`
	Commits         int     `json:"commits"`
	ElapsedNs       int64   `json:"elapsed_ns"`
	CommitsPerSec   float64 `json:"commits_per_sec"`
	Fsyncs          int64   `json:"fsyncs"`
	CommitsPerFsync float64 `json:"commits_per_fsync"`
	MaxBatch        int64   `json:"max_batch"`
	ReaderOps       int64   `json:"reader_ops"`
	ReaderMaxNs     int64   `json:"reader_max_latency_ns"`
}

type groupCommitResult struct {
	Experiment string `json:"experiment"`
	envInfo
	SyncDelayMs int64             `json:"sync_delay_ms"`
	Modes       []groupCommitMode `json:"modes"`
	Speedup     float64           `json:"speedup_group_vs_per_txn"`
}

// e16RoundTrip sends lines and reads one response terminator.
func e16RoundTrip(conn net.Conn, r *bufio.Reader, lines ...string) (string, error) {
	for _, l := range lines {
		if _, err := conn.Write([]byte(l + "\n")); err != nil {
			return "", err
		}
	}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return "", err
		}
		line = strings.TrimRight(line, "\n")
		if line == "OK" || line == "ILLEGAL" || strings.HasPrefix(line, "ERR ") {
			return line, nil
		}
	}
}

// e16Mode runs one full workload against a fresh journaled server and
// reports its throughput and amortization counters.
func e16Mode(group bool, writers, commitsPer int, syncDelay time.Duration) (groupCommitMode, error) {
	name := "per-txn-fsync"
	if group {
		name = "group-commit"
	}
	res := groupCommitMode{Mode: name, Writers: writers, Commits: writers * commitsPer}

	s := workload.WhitePagesSchema()
	dir, err := os.MkdirTemp("", "bsbench-e16-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(dir)
	srv, err := server.New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		return res, err
	}
	srv.SetGroupCommit(group)
	if err := srv.OpenJournal(filepath.Join(dir, "journal.ldif")); err != nil {
		return res, err
	}
	srv.SetSyncDelay(syncDelay)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer srv.Close()

	var (
		readerWg  sync.WaitGroup
		writerWg  sync.WaitGroup
		errMu     sync.Mutex
		firstErr  error
		stop      = make(chan struct{})
		readerOps atomic.Int64
		readerMax atomic.Int64
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// The reader probe: reads must stay live while fsyncs are in flight.
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			fail(err)
			return
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			if term, err := e16RoundTrip(conn, r, "GET ou=attLabs,o=att"); err != nil || term != "OK" {
				fail(fmt.Errorf("reader: %q %v", term, err))
				return
			}
			el := time.Since(t0).Nanoseconds()
			readerOps.Add(1)
			for {
				old := readerMax.Load()
				if el <= old || readerMax.CompareAndSwap(old, el) {
					break
				}
			}
		}
	}()

	start := time.Now()
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				fail(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for i := 0; i < commitsPer; i++ {
				uid := fmt.Sprintf("e16w%dc%d", w, i)
				term, err := e16RoundTrip(conn, r,
					"BEGIN",
					"ADD uid="+uid+",ou=attLabs,o=att",
					"objectClass: person",
					"objectClass: top",
					"name: "+uid,
					"COMMIT",
				)
				if err != nil || term != "OK" {
					fail(fmt.Errorf("writer %d BEGIN: %q %v", w, term, err))
					return
				}
				// That was BEGIN's OK; now read the COMMIT verdict.
				if term, err = e16RoundTrip(conn, r); err != nil || term != "OK" {
					fail(fmt.Errorf("writer %d commit %d: %q %v", w, i, term, err))
					return
				}
			}
		}(w)
	}

	writerWg.Wait()
	elapsed := time.Since(start)
	close(stop)
	readerWg.Wait()
	if firstErr != nil {
		return res, firstErr
	}

	fsyncs, commits, maxBatch := srv.JournalStats()
	res.ElapsedNs = elapsed.Nanoseconds()
	res.CommitsPerSec = float64(commits) / elapsed.Seconds()
	res.Fsyncs = fsyncs
	res.CommitsPerFsync = float64(commits) / float64(fsyncs)
	res.MaxBatch = maxBatch
	res.ReaderOps = readerOps.Load()
	res.ReaderMaxNs = readerMax.Load()
	return res, nil
}

func runE16() {
	writers, commitsPer := 8, 25
	syncDelay := 2 * time.Millisecond
	if *quick {
		commitsPer = 6
	}
	fmt.Printf("%d writers x %d commits each, artificial fsync latency %v\n\n",
		writers, commitsPer, syncDelay)

	res := groupCommitResult{Experiment: "e16-group-commit", envInfo: env("whitepages"), SyncDelayMs: syncDelay.Milliseconds()}
	var perTxn, grouped groupCommitMode
	for _, group := range []bool{false, true} {
		m, err := e16Mode(group, writers, commitsPer, syncDelay)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: e16 %s: %v\n", m.Mode, err)
			return
		}
		res.Modes = append(res.Modes, m)
		if group {
			grouped = m
		} else {
			perTxn = m
		}
		fmt.Printf("%-14s %8.0f commits/s  fsyncs=%-4d commits/fsync=%-6.2f max_batch=%-3d reader_max=%v over %d reads\n",
			m.Mode, m.CommitsPerSec, m.Fsyncs, m.CommitsPerFsync, m.MaxBatch,
			time.Duration(m.ReaderMaxNs), m.ReaderOps)
	}
	res.Speedup = grouped.CommitsPerSec / perTxn.CommitsPerSec
	fmt.Printf("\ngroup commit vs per-transaction fsync: %.2fx throughput, %.2f commits amortized per fsync\n",
		res.Speedup, grouped.CommitsPerFsync)
	fmt.Println("shape check: with W concurrent writers and a slow disk, commits/fsync tends toward W and throughput scales with it.")

	if *jsonE16 != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonE16, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		fmt.Printf("results written to %s\n", *jsonE16)
	}
}

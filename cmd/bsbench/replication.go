package main

// E18 — streaming replication (internal/repl, internal/server/repl.go):
// a primary ships its acknowledged journal to read-only replicas, so
// read traffic can fan out across the cluster while writes stay on one
// node. The experiment measures two things. First, aggregate SEARCH
// throughput as replicas are added: a fixed pool of protocol clients
// is spread round-robin over the serving nodes, so each added replica
// splits the per-node session and lock contention. The gain is real
// parallel capacity, so the curve scales with the cores (and, for
// write-heavy mixes, disks) backing the nodes — on a single-core host
// the aggregate stays flat and the JSON records that honestly. Second,
// the write-side price of semi-synchronous durability: commit latency
// with the semi-sync gate (COMMIT's OK waits for a replica ack)
// against the async baseline on an identical cluster. Optionally
// records the numbers as JSON (-json-e18 BENCH_repl.json).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"boundschema/internal/dirtree"
	"boundschema/internal/repl"
	"boundschema/internal/server"
	"boundschema/internal/txn"
	"boundschema/internal/workload"
)

type replReadPoint struct {
	Replicas  int     `json:"replicas"`
	Servers   int     `json:"servers"`
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops"`
	ElapsedNs int64   `json:"elapsed_ns"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup_vs_primary_only"`
}

type replCommitPoint struct {
	Mode       string  `json:"mode"`
	Commits    int     `json:"commits"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	NsPerTx    float64 `json:"ns_per_tx"`
	AckedSeq   uint64  `json:"acked_seq"`
	Degraded   bool    `json:"degraded"`
	SlowdownVs float64 `json:"slowdown_vs_async"`
}

type replResult struct {
	Experiment string `json:"experiment"`
	envInfo
	Reads   []replReadPoint   `json:"reads"`
	Commits []replCommitPoint `json:"commits"`
}

// e18Cluster builds a journaled primary with seeded commits plus n
// caught-up replicas, and returns the protocol addresses of every
// serving node (primary first) and a shutdown func.
func e18Cluster(dir string, mode repl.Mode, n, seedCommits int) (*server.Server, []string, func(), error) {
	var servers []*server.Server
	shutdown := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	node := func(name string) (*server.Server, error) {
		s := workload.WhitePagesSchema()
		srv, err := server.New(s, "whitepages", workload.WhitePagesInstance(s))
		if err != nil {
			return nil, err
		}
		// Per-transaction durability: each commit holds the write lock
		// through its own fsync, the contention the read fan-out measures.
		srv.SetGroupCommit(false)
		if err := srv.OpenJournal(filepath.Join(dir, name+".ldif")); err != nil {
			srv.Close()
			return nil, err
		}
		servers = append(servers, srv)
		return srv, nil
	}
	primary, err := node("primary")
	if err != nil {
		return nil, nil, shutdown, err
	}
	primary.SetReplicationMode(mode)
	replAddr, err := primary.ListenRepl("127.0.0.1:0")
	if err != nil {
		return nil, nil, shutdown, err
	}
	for i := 0; i < seedCommits; i++ {
		if _, err := primary.CommitTx(e18Txn(i)); err != nil {
			return nil, nil, shutdown, err
		}
	}
	addr, err := primary.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, shutdown, err
	}
	addrs := []string{addr}
	for i := 0; i < n; i++ {
		r, err := node(fmt.Sprintf("replica%d", i))
		if err != nil {
			return nil, nil, shutdown, err
		}
		if err := r.StartReplica(replAddr); err != nil {
			return nil, nil, shutdown, err
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			if local, _ := r.ReplicaSeqs(); local >= uint64(seedCommits) {
				break
			}
			if time.Now().After(deadline) {
				return nil, nil, shutdown, fmt.Errorf("replica %d never caught up", i)
			}
			time.Sleep(time.Millisecond)
		}
		raddr, err := r.Listen("127.0.0.1:0")
		if err != nil {
			return nil, nil, shutdown, err
		}
		addrs = append(addrs, raddr)
	}
	return primary, addrs, shutdown, nil
}

func e18Txn(i int) *txn.Transaction {
	tx := &txn.Transaction{}
	uid := fmt.Sprintf("e18u%06d", i)
	tx.Add("uid="+uid+",ou=attLabs,o=att", []string{"person", "top"},
		map[string][]dirtree.Value{"name": {dirtree.String(uid)}})
	return tx
}

// e18Search runs ops SEARCH commands per client over the protocol, each
// client pinned round-robin to one serving node, and returns the wall
// time for the whole pool.
func e18Search(addrs []string, clients, opsPerClient int) (time.Duration, error) {
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			for i := 0; i < opsPerClient; i++ {
				if _, err := fmt.Fprintf(conn, "SEARCH (objectClass=person)\n"); err != nil {
					errs <- err
					return
				}
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						errs <- err
						return
					}
					line = strings.TrimRight(line, "\n")
					if line == "OK" || line == "ILLEGAL" || strings.HasPrefix(line, "ERR ") {
						if line != "OK" {
							errs <- fmt.Errorf("SEARCH replied %q", line)
						}
						break
					}
				}
			}
		}(addrs[c%len(addrs)])
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return elapsed, nil
}

func runE18() {
	seed, clients, opsPerClient, commits := 200, 12, 400, 400
	if *quick {
		seed, clients, opsPerClient, commits = 100, 6, 60, 80
	}
	replicaCounts := []int{0, 1, 2}
	res := replResult{Experiment: "e18-replication", envInfo: env("whitepages")}

	fmt.Printf("read fan-out: %d clients round-robin over the serving nodes, %d SEARCHes each (best of 2 rounds, %d CPUs)\n\n", clients, opsPerClient, runtime.NumCPU())
	var base float64
	for _, n := range replicaCounts {
		dir, err := os.MkdirTemp("", "bsbench-e18-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: e18: %v\n", err)
			return
		}
		_, addrs, shutdown, err := e18Cluster(dir, repl.Async, n, seed)
		if err == nil {
			// Best of two rounds: the first also warms the per-node caches
			// and connection paths.
			var elapsed time.Duration
			for round := 0; err == nil && round < 2; round++ {
				var e time.Duration
				e, err = e18Search(addrs, clients, opsPerClient)
				if err == nil && (elapsed == 0 || e < elapsed) {
					elapsed = e
				}
			}
			if err == nil {
				ops := clients * opsPerClient
				p := replReadPoint{
					Replicas:  n,
					Servers:   len(addrs),
					Clients:   clients,
					Ops:       ops,
					ElapsedNs: elapsed.Nanoseconds(),
					OpsPerSec: float64(ops) / elapsed.Seconds(),
				}
				if base == 0 {
					base = p.OpsPerSec
				}
				p.Speedup = p.OpsPerSec / base
				res.Reads = append(res.Reads, p)
				fmt.Printf("%d replica(s)  %d servers  %7d ops in %-12v  %9.0f ops/s  %.2fx\n",
					n, len(addrs), ops, elapsed, p.OpsPerSec, p.Speedup)
			}
		}
		shutdown()
		os.RemoveAll(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: e18 replicas=%d: %v\n", n, err)
			return
		}
	}

	fmt.Printf("\nsemi-sync write price: %d commits on a 1-replica cluster, async vs semisync\n\n", commits)
	var asyncNs float64
	for _, mode := range []repl.Mode{repl.Async, repl.SemiSync} {
		dir, err := os.MkdirTemp("", "bsbench-e18-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: e18: %v\n", err)
			return
		}
		primary, _, shutdown, err := e18Cluster(dir, mode, 1, seed)
		if err == nil {
			t0 := time.Now()
			for i := 0; err == nil && i < commits; i++ {
				_, err = primary.CommitTx(e18Txn(seed + i))
			}
			if err == nil {
				elapsed := time.Since(t0)
				st := primary.ReplStatus()
				p := replCommitPoint{
					Mode:      mode.String(),
					Commits:   commits,
					ElapsedNs: elapsed.Nanoseconds(),
					NsPerTx:   float64(elapsed.Nanoseconds()) / float64(commits),
					AckedSeq:  st.AckedSeq,
					Degraded:  st.Degraded,
				}
				if asyncNs == 0 {
					asyncNs = p.NsPerTx
				}
				p.SlowdownVs = p.NsPerTx / asyncNs
				res.Commits = append(res.Commits, p)
				fmt.Printf("%-8s  %d commits in %-12v  %9.0f ns/tx  acked_seq=%d degraded=%v  %.2fx\n",
					p.Mode, commits, elapsed, p.NsPerTx, p.AckedSeq, p.Degraded, p.SlowdownVs)
			}
		}
		shutdown()
		os.RemoveAll(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: e18 %s: %v\n", mode, err)
			return
		}
	}
	fmt.Println("\nshape check: each replica is independent parallel read capacity, so aggregate throughput scales with the cores backing the nodes (flat when every node shares one CPU); semi-sync buys replica durability for one network round-trip per commit.")

	if *jsonE18 != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonE18, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		fmt.Printf("results written to %s\n", *jsonE18)
	}
}

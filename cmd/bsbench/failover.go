package main

// E21 — epoch-fenced failover (internal/server/repl.go, internal/repl):
// the operational cost and the safety payoff of PROMOTE. Two
// measurements. First, time-to-writable: from the instant the primary
// dies to the first commit accepted by the promoted replica, which
// prices everything PROMOTE does on the critical path (full legality
// re-proof, epoch bump, journal rotation with the epoch header).
// Second, acked-write loss across the failover, async vs semi-sync: a
// burst of commits, primary killed, the most-caught-up replica
// promoted, and every commit the client saw OK'd is checked against
// the promoted node's state. Async may lose its unreplicated tail and
// the JSON records how much; semi-sync must lose zero — that is the
// property the partition matrix pins and this experiment prices.
// Finally the fencing half: a deposed-but-alive primary keeps
// accepting doomed writes until first contact with higher-epoch
// evidence, and the experiment counts that window's writes and shows
// the acceptance rate drop to zero after the fence. Optionally records
// the numbers as JSON (-json-e21 BENCH_failover.json).

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"boundschema/internal/repl"
	"boundschema/internal/server"
	"boundschema/internal/workload"
)

type failoverPoint struct {
	Mode             string  `json:"mode"`
	Commits          int     `json:"commits"`
	CommitSeqAtKill  uint64  `json:"commit_seq_at_kill"`
	PromotedSeq      uint64  `json:"promoted_local_seq"`
	AckedLost        uint64  `json:"acked_writes_lost"`
	Epoch            uint64  `json:"epoch_after_promote"`
	PromoteNs        int64   `json:"promote_ns"`
	TimeToWritableNs int64   `json:"time_to_writable_ns"`
	TimeToWritableMs float64 `json:"time_to_writable_ms"`
}

type fencingPoint struct {
	DoomedBeforeFence  int     `json:"doomed_writes_before_fence"`
	AcceptedAfterFence int     `json:"writes_accepted_after_fence"`
	TimeToFenceNs      int64   `json:"time_to_fence_ns"`
	TimeToFenceMs      float64 `json:"time_to_fence_ms"`
	StaleEpoch         uint64  `json:"stale_epoch"`
	NewEpoch           uint64  `json:"new_epoch"`
}

type failoverResult struct {
	Experiment string `json:"experiment"`
	envInfo
	Failovers []failoverPoint `json:"failovers"`
	Fencing   fencingPoint    `json:"fencing"`
}

func runE21() {
	commits := 300
	if *quick {
		commits = 60
	}
	res := failoverResult{Experiment: "e21-failover", envInfo: env("whitepages")}

	fmt.Printf("failover: %d-commit burst on 1p+2r, kill primary, promote most-caught-up replica (per mode)\n\n", commits)
	for _, mode := range []repl.Mode{repl.Async, repl.SemiSync} {
		pt, err := e21RunMode(mode, commits)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: e21 %s: %v\n", mode, err)
			return
		}
		res.Failovers = append(res.Failovers, pt)
		fmt.Printf("%-8s  commit_seq=%d promoted_seq=%d acked_lost=%d  promote=%-10v time_to_writable=%-10v epoch=%d\n",
			pt.Mode, pt.CommitSeqAtKill, pt.PromotedSeq, pt.AckedLost,
			time.Duration(pt.PromoteNs), time.Duration(pt.TimeToWritableNs), pt.Epoch)
	}

	fmt.Printf("\nfencing: deposed-but-alive primary, doomed-write window until first higher-epoch contact\n\n")
	fp, err := e21Fencing(commits / 3)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bsbench: e21 fencing: %v\n", err)
		return
	}
	res.Fencing = fp
	fmt.Printf("doomed writes accepted before fence: %d (split-brain window is real)\n", fp.DoomedBeforeFence)
	fmt.Printf("writes accepted after fence:         %d (must be 0)\n", fp.AcceptedAfterFence)
	fmt.Printf("time to fence on contact:            %v (epoch %d -> fenced by %d)\n",
		time.Duration(fp.TimeToFenceNs), fp.StaleEpoch, fp.NewEpoch)

	fmt.Println("\nshape check: semi-sync must lose zero acked writes across the failover (async records its honest tail loss); the deposed primary accepts writes only until first contact with the new epoch, then refuses them for good.")

	if *jsonE21 != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonE21, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		fmt.Printf("results written to %s\n", *jsonE21)
	}
}

// e21RunMode builds its own cluster so it can hold the replica handles
// e18Cluster hides, runs the burst, kills the primary and times the
// promotion to first accepted write.
func e21RunMode(mode repl.Mode, commits int) (failoverPoint, error) {
	pt := failoverPoint{Mode: mode.String(), Commits: commits}
	primary, replicas, cleanup, err := e21Cluster(mode)
	defer cleanup()
	if err != nil {
		return pt, err
	}

	for i := 0; i < commits; i++ {
		if _, err := primary.CommitTx(e18Txn(i)); err != nil {
			return pt, fmt.Errorf("burst commit %d: %v", i, err)
		}
	}
	local, _ := primary.ReplicaSeqs()
	pt.CommitSeqAtKill = local

	kill := time.Now()
	primary.Close()

	// Promote the most-caught-up replica — the failover runbook's rule.
	best := replicas[0]
	bestSeq, _ := best.ReplicaSeqs()
	for _, r := range replicas[1:] {
		if s, _ := r.ReplicaSeqs(); s > bestSeq {
			best, bestSeq = r, s
		}
	}
	pt.PromotedSeq = bestSeq
	if pt.CommitSeqAtKill > bestSeq {
		pt.AckedLost = pt.CommitSeqAtKill - bestSeq
	}

	t0 := time.Now()
	if _, err := best.Promote(); err != nil {
		return pt, fmt.Errorf("promote: %v", err)
	}
	pt.PromoteNs = time.Since(t0).Nanoseconds()
	if _, err := best.CommitTx(e18Txn(commits)); err != nil {
		return pt, fmt.Errorf("first post-promote write: %v", err)
	}
	pt.TimeToWritableNs = time.Since(kill).Nanoseconds()
	pt.TimeToWritableMs = float64(pt.TimeToWritableNs) / 1e6
	pt.Epoch = best.Epoch()
	return pt, nil
}

// e21Fencing demonstrates and prices the fence: promote a replica while
// the old primary is still alive and partitioned-away (here: simply not
// contacted), count the doomed writes the stale primary still accepts,
// then deliver the higher-epoch evidence the way a rejoining replica
// would — a HELLO on the replication port — and verify acceptance drops
// to zero.
func e21Fencing(doomed int) (fencingPoint, error) {
	var fp fencingPoint
	primary, replicas, cleanup, err := e21Cluster(repl.SemiSync)
	defer cleanup()
	if err != nil {
		return fp, err
	}
	primary.SetSemiSyncTimeout(100 * time.Millisecond)

	for i := 0; i < 20; i++ {
		if _, err := primary.CommitTx(e18Txn(i)); err != nil {
			return fp, fmt.Errorf("seed commit %d: %v", i, err)
		}
	}
	fp.StaleEpoch = primary.Epoch()

	// Failover happens elsewhere: a replica is promoted while the old
	// primary is alive but out of contact.
	promoted := replicas[0]
	if _, err := promoted.Promote(); err != nil {
		return fp, fmt.Errorf("promote: %v", err)
	}
	fp.NewEpoch = promoted.Epoch()

	// The split-brain window: the stale primary has seen nothing and
	// still accepts writes. Every one of these is doomed — the rejoin
	// path will discard them via snapshot bootstrap.
	for i := 0; i < doomed; i++ {
		tx := e18Txn(10_000 + i)
		if _, err := primary.CommitTx(tx); err == nil {
			fp.DoomedBeforeFence++
		}
	}

	// First contact: a higher-epoch HELLO on the replication port, the
	// same evidence a replica that already follows the new primary
	// presents when it dials a stale address.
	replAddr := primaryReplAddr(primary)
	if replAddr == "" {
		return fp, fmt.Errorf("stale primary has no replication listener")
	}
	t0 := time.Now()
	if err := e21Hello(replAddr, fp.NewEpoch); err != nil {
		return fp, fmt.Errorf("fencing HELLO: %v", err)
	}
	// The fence trips synchronously in the HELLO handler; poll only to
	// absorb scheduling noise.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := primary.CommitTx(e18Txn(20_000)); err != nil {
			if !strings.Contains(err.Error(), "fenced") {
				return fp, fmt.Errorf("post-contact write refused for the wrong reason: %v", err)
			}
			break
		}
		fp.AcceptedAfterFence++
		if time.Now().After(deadline) {
			return fp, fmt.Errorf("stale primary never fenced after contact")
		}
		time.Sleep(time.Millisecond)
	}
	fp.TimeToFenceNs = time.Since(t0).Nanoseconds()
	fp.TimeToFenceMs = float64(fp.TimeToFenceNs) / 1e6
	return fp, nil
}

// e21Hello dials a replication listener, announces the given epoch at
// sequence 0 and drains the response — the minimal higher-epoch
// contact.
func e21Hello(replAddr string, epoch uint64) error {
	conn, err := net.DialTimeout("tcp", replAddr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprint(conn, repl.HelloLine(0, epoch)); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err = bufio.NewReader(conn).ReadString('\n')
	return err
}

// e21Cluster is e18Cluster with the replica handles exposed: a
// journaled semi-or-async primary plus two caught-up replicas, all on
// their own temp dir.
func e21Cluster(mode repl.Mode) (*server.Server, []*server.Server, func(), error) {
	dir, err := os.MkdirTemp("", "bsbench-e21-")
	if err != nil {
		return nil, nil, func() {}, err
	}
	var servers []*server.Server
	cleanup := func() {
		for _, s := range servers {
			s.Close()
		}
		os.RemoveAll(dir)
	}
	node := func(name string) (*server.Server, error) {
		srv, err := e21Node(dir, name)
		if err == nil {
			servers = append(servers, srv)
		}
		return srv, err
	}
	primary, err := node("primary")
	if err != nil {
		return nil, nil, cleanup, err
	}
	primary.SetReplicationMode(mode)
	primary.SetSemiSyncTimeout(2 * time.Second)
	replAddr, err := primary.ListenRepl("127.0.0.1:0")
	if err != nil {
		return nil, nil, cleanup, err
	}
	e21ReplAddrs[primary] = replAddr
	var replicas []*server.Server
	for i := 0; i < 2; i++ {
		r, err := node(fmt.Sprintf("replica%d", i))
		if err != nil {
			return nil, nil, cleanup, err
		}
		if err := r.StartReplica(replAddr); err != nil {
			return nil, nil, cleanup, err
		}
		replicas = append(replicas, r)
	}
	// Wait until both replicas subscribed so semi-sync never degrades.
	deadline := time.Now().Add(10 * time.Second)
	for primary.ReplStatus().Replicas < 2 {
		if time.Now().After(deadline) {
			return nil, nil, cleanup, fmt.Errorf("replicas never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	return primary, replicas, cleanup, nil
}

// e21ReplAddrs remembers each primary's replication listener for the
// fencing contact; bsbench runs single-threaded so a bare map is fine.
var e21ReplAddrs = map[*server.Server]string{}

func primaryReplAddr(s *server.Server) string { return e21ReplAddrs[s] }

// e21Node builds one journaled whitepages server, per-transaction
// durability, journal on its own file under dir.
func e21Node(dir, name string) (*server.Server, error) {
	s := workload.WhitePagesSchema()
	srv, err := server.New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		return nil, err
	}
	srv.SetGroupCommit(false)
	if err := srv.OpenJournal(filepath.Join(dir, name+".ldif")); err != nil {
		srv.Close()
		return nil, err
	}
	return srv, nil
}

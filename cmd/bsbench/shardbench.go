package main

// E22 — subtree sharding (internal/shard, cmd/bsrouter): aggregate
// write throughput vs shard count. Theorem 4.1's modularity is what
// licenses the deployment shape — single-subtree transactions check
// shard-locally, so N shards run N independent legality engines AND N
// independent journal fsync pipelines. This experiment prices the
// second claim, the one a single machine can measure honestly: group
// commit is off and every journal fsync sleeps an artificial 2ms, so
// commit throughput is bound by sequential fsyncs per journal, not by
// CPU (the box has one; the JSON stamps it). A pure-ingest mix is
// driven through the router at a carved whitepages corpus for 0 (plain
// single node), 2 and 4 carved shards; creates are single-subtree so
// nothing is refused cross-shard, and aggregate commits/sec should
// scale with the number of servers (carved shards + the default
// shard). Every point ends in the sharded oracle (per-shard VERIFY,
// router CHECK with the cross-shard audit, reconstructed global
// instance legal). Optionally records the numbers as JSON (-json-e22
// BENCH_shard.json).

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"boundschema/internal/loadgen"
	"boundschema/internal/server"
)

type shardPoint struct {
	Cluster         string  `json:"cluster"`
	CarvedShards    int     `json:"carved_shards"` // 0 = unsharded baseline
	Servers         int     `json:"servers"`       // independent journal/fsync pipelines
	Workers         int     `json:"workers"`
	Committed       int     `json:"committed"`
	ElapsedMs       int64   `json:"elapsed_ms"`
	CommitsPerSec   float64 `json:"commits_per_sec"`
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
	CrossShard      int     `json:"cross_shard_refusals"`
}

type shardScalingResult struct {
	Experiment string `json:"experiment"`
	envInfo
	SyncDelayMs float64      `json:"sync_delay_ms"`
	Note        string       `json:"note"`
	Points      []shardPoint `json:"points"`
}

func runE22() {
	corpusN, workers, dur := 1200, 12, 2*time.Second
	counts := []int{0, 2, 4}
	if *quick {
		corpusN, workers, dur = 400, 8, 800*time.Millisecond
		counts = []int{0, 2}
	}
	const syncDelay = 2 * time.Millisecond
	sc, _ := loadgen.ScenarioByName("whitepages")
	res := shardScalingResult{
		Experiment:  "e22-shard-scaling",
		envInfo:     env(sc.Name),
		SyncDelayMs: float64(syncDelay) / float64(time.Millisecond),
		Note: "group commit off, every fsync sleeps sync_delay_ms: the experiment prices independent " +
			"fsync pipelines, which shard-local legality (Theorem 4.1) makes independent; with cpus=1 " +
			"it deliberately does not price CPU parallelism",
	}
	fmt.Printf("shard write scaling: pure-ingest mix, %d workers, %v per point, %v artificial fsync, group commit off\n\n",
		workers, dur, syncDelay)
	ingest := loadgen.Mix{Name: "ingest", Create: 100}
	var base float64
	for _, n := range counts {
		pt, err := e22Point(sc, corpusN, n, workers, dur, syncDelay, ingest)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: e22 shards=%d: %v\n", n, err)
			return
		}
		if base == 0 {
			base = pt.CommitsPerSec
		}
		pt.SpeedupVsSingle = pt.CommitsPerSec / base
		res.Points = append(res.Points, pt)
		fmt.Printf("%-14s servers=%d  committed=%-6d %8.0f commits/s  speedup=%.2fx  cross_shard=%d\n",
			pt.Cluster, pt.Servers, pt.Committed, pt.CommitsPerSec, pt.SpeedupVsSingle, pt.CrossShard)
	}
	fmt.Println("\nshape check: aggregate commits/sec grows with the server count because each shard fsyncs " +
		"its own journal; creates are single-subtree so the router refuses nothing. Every point passed the " +
		"sharded oracle.")

	if *jsonE22 != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonE22, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		fmt.Printf("results written to %s\n", *jsonE22)
	}
}

// e22Point measures one cluster shape: shards=0 is the unsharded
// single-node baseline, otherwise the corpus is carved into that many
// subtree shards plus the default remainder behind a router. Both run
// the same slow-disk emulation and end in their oracle.
func e22Point(sc *loadgen.Scenario, corpusN, shards, workers int, dur, syncDelay time.Duration, mix loadgen.Mix) (shardPoint, error) {
	var pt shardPoint
	pt.CarvedShards, pt.Workers = shards, workers

	// Group commit latches at OpenJournal, so the slow disk must be
	// installed through the clusters' pre-journal tune hook: per-txn
	// fsync with an artificial sleep makes each journal a sequential
	// ~1/syncDelay commits/sec pipeline, which is the resource sharding
	// multiplies.
	slowDisk := func(s *server.Server) {
		s.SetGroupCommit(false)
		s.SetSyncDelay(syncDelay)
	}

	if shards == 0 {
		cl, err := loadgen.StartSingle(sc, corpusN, 1, slowDisk)
		if err != nil {
			return pt, err
		}
		defer cl.Close()
		res, err := loadgen.Run(loadgen.Options{
			Scenario: sc, Pools: cl.Pools, Mix: mix,
			Workers: workers, Duration: dur, Seed: 1,
			CorpusEntries: cl.CorpusEntries, Cluster: "single",
		}, cl.Target())
		if err != nil {
			return pt, err
		}
		if err := loadgen.Oracle(cl.Schema, cl.Nodes()); err != nil {
			return pt, fmt.Errorf("single-node oracle: %v", err)
		}
		pt.Cluster, pt.Servers = "single", 1
		fillShardPoint(&pt, res)
		return pt, nil
	}

	cl, err := loadgen.StartShardCluster(sc, corpusN, shards, 1, slowDisk)
	if err != nil {
		return pt, err
	}
	defer cl.Close()
	pt.Cluster, pt.Servers = fmt.Sprintf("router+%dsh", len(cl.Shards)), len(cl.Shards)
	res, err := loadgen.Run(loadgen.Options{
		Scenario: sc, Pools: cl.Pools, Mix: mix,
		Workers: workers, Duration: dur, Seed: 1,
		CorpusEntries: cl.CorpusEntries, Cluster: pt.Cluster,
	}, loadgen.NewTarget(cl.Addr))
	if err != nil {
		return pt, err
	}
	if err := cl.Oracle(); err != nil {
		return pt, fmt.Errorf("sharded oracle: %v", err)
	}
	fillShardPoint(&pt, res)
	return pt, nil
}

func fillShardPoint(pt *shardPoint, res *loadgen.Result) {
	pt.Committed = res.Committed
	pt.ElapsedMs = res.ElapsedMS
	if res.ElapsedMS > 0 {
		pt.CommitsPerSec = float64(res.Committed) / (float64(res.ElapsedMS) / 1000)
	}
	pt.CrossShard = res.Errors[loadgen.ErrCrossShard]
}

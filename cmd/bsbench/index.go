package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"boundschema/internal/filter"
	"boundschema/internal/hquery"
	"boundschema/internal/server"
	"boundschema/internal/workload"
)

// e20 — attribute-value indexes: SEARCH latency vs instance size.
//
// The planner should keep point-lookup SEARCH latency near-flat as the
// instance grows: an equality probe against the per-attribute value
// index is a hash/tree lookup, while the scan fallback it replaces is
// O(n). This experiment grows a white-pages corpus 10k -> 1M entries
// and measures, per size:
//
//   - search_p50_ns: end-to-end SEARCH latency over a real loopback
//     connection through the server's command path (parse, plan, index
//     probe, reply) — the user-visible number the near-flat claim and
//     the -check-index-scaling gate are about;
//   - eval_p50_ns: the in-process planner probe alone
//     (hquery.EvalSelect), isolating index cost from protocol cost;
//   - scan_p50_ns: a brute-force scan of the same filters over the same
//     instance — the pre-index cost of every non-class atom.
//
// If the planner regressed to scans, search p50 at 1M entries would be
// the scan cost (hundreds of ms, ~1000x the gate's bound), so the gate
// catches "index stopped serving SEARCH" outright.

type indexPoint struct {
	Entries     int     `json:"entries"`
	Queries     int     `json:"queries"`
	Strategy    string  `json:"strategy"`
	BuildMs     int64   `json:"index_build_ms"`
	SearchP50Ns int64   `json:"search_p50_ns"`
	SearchP99Ns int64   `json:"search_p99_ns"`
	EvalP50Ns   int64   `json:"eval_p50_ns"`
	ScanP50Ns   int64   `json:"scan_p50_ns"`
	SpeedupP50  float64 `json:"speedup_vs_scan_p50"`
}

type indexResult struct {
	Experiment string `json:"experiment"`
	envInfo
	Points []indexPoint `json:"points"`
}

func quantileNs(ds []time.Duration, q float64) int64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(q * float64(len(sorted)-1))
	return sorted[i].Nanoseconds()
}

// e20Probe measures one corpus size.
func e20Probe(n int, rng *rand.Rand) (indexPoint, error) {
	d := workload.Corpus(workload.WhitePagesSchema(), rng, n)
	v := d.All()
	ents := v.Entries()

	const probes = 64
	fs := make([]filter.Filter, probes)
	for i := range fs {
		// Sample real person names so most probes hit; misses exercise
		// the same index path.
		e := ents[rng.Intn(len(ents))]
		val := fmt.Sprintf("person %d", rng.Intn(n))
		if vals := e.Attr("name"); len(vals) > 0 {
			val = vals[0].String()
		}
		fs[i] = filter.Compare{Attr: "name", Op: filter.OpEqual, Value: val}
	}

	// First planner evaluation builds the name index lazily; charge it
	// to build cost, not probe latency.
	t0 := time.Now()
	_, plan := hquery.EvalSelect(fs[0], v)
	buildMs := time.Since(t0).Milliseconds()
	if plan.Strategy != "index-eq" {
		return indexPoint{}, fmt.Errorf("planner chose %q for an equality probe, want index-eq", plan.Strategy)
	}

	evals := make([]time.Duration, probes)
	for i, f := range fs {
		t := time.Now()
		hquery.EvalSelect(f, v)
		evals[i] = time.Since(t)
	}

	// End-to-end: the same probes as SEARCH commands over loopback TCP,
	// one round trip per query.
	srv, err := server.New(workload.WhitePagesSchema(), "whitepages", d)
	if err != nil {
		return indexPoint{}, err
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return indexPoint{}, err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return indexPoint{}, err
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	searchOnce := func(f filter.Filter) (time.Duration, error) {
		t := time.Now()
		if _, err := fmt.Fprintf(conn, "SEARCH %s\n", f); err != nil {
			return 0, err
		}
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				return 0, err
			}
			line = strings.TrimRight(line, "\n")
			if line == "OK" {
				return time.Since(t), nil
			}
			if strings.HasPrefix(line, "ERR ") {
				return 0, fmt.Errorf("SEARCH %s: %s", f, line)
			}
		}
	}
	if _, err := searchOnce(fs[0]); err != nil { // warm the connection
		return indexPoint{}, err
	}
	wire := make([]time.Duration, probes)
	for i, f := range fs {
		el, err := searchOnce(f)
		if err != nil {
			return indexPoint{}, err
		}
		wire[i] = el
	}

	// Scan baseline: brute force over the view, fewer probes — at 1M
	// entries each one walks the whole instance.
	scanProbes := probes
	if n > 50_000 {
		scanProbes = 8
	}
	scan := make([]time.Duration, scanProbes)
	for i := 0; i < scanProbes; i++ {
		f := fs[i]
		t := time.Now()
		cnt := 0
		for _, e := range ents {
			if f.Matches(e) {
				cnt++
			}
		}
		scan[i] = time.Since(t)
	}

	p := indexPoint{
		Entries:     d.Len(),
		Queries:     probes,
		Strategy:    plan.Strategy,
		BuildMs:     buildMs,
		SearchP50Ns: quantileNs(wire, 0.50),
		SearchP99Ns: quantileNs(wire, 0.99),
		EvalP50Ns:   quantileNs(evals, 0.50),
		ScanP50Ns:   quantileNs(scan, 0.50),
	}
	if p.SearchP50Ns > 0 {
		p.SpeedupP50 = float64(p.ScanP50Ns) / float64(p.SearchP50Ns)
	}
	return p, nil
}

func runE20() {
	sizes := []int{10_000, 100_000, 1_000_000}
	if *quick {
		sizes = []int{2_000, 20_000}
	}
	fmt.Println("equality SEARCH p50 (end-to-end and planner-only) vs brute scan, as the instance grows")
	fmt.Println()

	res := indexResult{Experiment: "e20-value-index", envInfo: env("whitepages")}
	rng := rand.New(rand.NewSource(20))
	for _, n := range sizes {
		p, err := e20Probe(n, rng)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: e20 n=%d: %v\n", n, err)
			os.Exit(1)
		}
		res.Points = append(res.Points, p)
		fmt.Printf("%8d entries  build=%-5dms  search p50=%-8d p99=%-8d ns  eval p50=%-7d ns  scan p50=%-10d ns  speedup=%.0fx\n",
			p.Entries, p.BuildMs, p.SearchP50Ns, p.SearchP99Ns, p.EvalP50Ns, p.ScanP50Ns, p.SpeedupP50)
	}
	fmt.Println("\nshape check: index-served SEARCH stays near-flat while the scan baseline grows linearly with the instance.")

	if *checkIndexScaling {
		first, last := res.Points[0], res.Points[len(res.Points)-1]
		if first.SearchP50Ns <= 0 || last.SearchP50Ns <= 0 {
			fmt.Fprintln(os.Stderr, "bsbench: e20 scaling check: missing p50 data")
			os.Exit(1)
		}
		ratio := float64(last.SearchP50Ns) / float64(first.SearchP50Ns)
		grow := float64(last.Entries) / float64(first.Entries)
		fmt.Printf("scaling check: %d -> %d entries (%.0fx): SEARCH p50 %d -> %d ns (%.2fx, limit 3x)\n",
			first.Entries, last.Entries, grow, first.SearchP50Ns, last.SearchP50Ns, ratio)
		if ratio >= 3 {
			fmt.Fprintf(os.Stderr, "bsbench: e20 FAILED scaling check: SEARCH latency scales with instance size (%.2fx >= 3x)\n", ratio)
			os.Exit(1)
		}
	}

	if *jsonE20 != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonE20, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		fmt.Printf("results written to %s\n", *jsonE20)
	}
}

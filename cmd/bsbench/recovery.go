package main

// E17 — crash-recovery cost (internal/server/recover.go): recovery
// replays the journal and then proves the whole recovered instance
// legal. Checksum-verified records replay trusted — no per-transaction
// Figure 5 re-checks, with the interval encoding patched in O(|Δ|)
// (internal/dirtree/patch.go) — so replay cost is linear in journal
// length; the terminal full proof is the safety net. The experiment
// builds journals of increasing length (plus one snapshot-compacted
// variant), times a cold OpenJournal over each, splits out the final
// legality proof (microseconds), and normalizes by the number of
// commits actually replayed — the snapshotted point replays zero, so
// its per-commit figure is omitted rather than understated. Optionally
// records the numbers as JSON (-json-e17 BENCH_recovery.json) and, with
// -check-recovery-scaling, fails unless ns/replayed-commit at the
// largest journal stays under 3x the smallest (the superlinear-replay
// regression gate run by CI).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"boundschema/internal/dirtree"
	"boundschema/internal/server"
	"boundschema/internal/txn"
	"boundschema/internal/workload"
)

type recoveryPoint struct {
	Commits      int   `json:"commits"`
	Snapshotted  bool  `json:"snapshotted"`
	JournalBytes int64 `json:"journal_bytes"`
	RecoveryNs   int64 `json:"recovery_ns"`
	Replayed     int64 `json:"replayed_commits"`
	LegalityUs   int64 `json:"legality_us"`
	// NsPerReplayed divides by the commits recovery actually replayed;
	// zero replays (the snapshotted point) omit it instead of
	// understating it.
	NsPerReplayed float64 `json:"ns_per_replayed_commit,omitempty"`
}

type recoveryResult struct {
	Experiment string `json:"experiment"`
	envInfo
	Points []recoveryPoint `json:"points"`
}

// e17Build drives n sequential commits into a fresh journal under dir
// and, when snapshot is set, compacts it so recovery starts from the
// snapshot instead of a full replay.
func e17Build(dir string, n int, snapshot bool) (string, error) {
	s := workload.WhitePagesSchema()
	srv, err := server.New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "journal.ldif")
	srv.SetGroupCommit(false)
	if err := srv.OpenJournal(path); err != nil {
		return "", err
	}
	defer srv.Close()
	for i := 0; i < n; i++ {
		tx := &txn.Transaction{}
		uid := fmt.Sprintf("e17u%06d", i)
		tx.Add("uid="+uid+",ou=attLabs,o=att", []string{"person", "top"},
			map[string][]dirtree.Value{"name": {dirtree.String(uid)}})
		rep, err := srv.CommitTx(tx)
		if err != nil {
			return "", err
		}
		if !rep.Legal() {
			return "", fmt.Errorf("e17 build commit %d rejected", i)
		}
	}
	if snapshot {
		if err := srv.Rotate(); err != nil {
			return "", err
		}
	}
	return path, nil
}

// e17Recover cold-starts a server over the journal and times the full
// recovery pipeline: scan + checksum verification + replay + the final
// legality proof. It returns the elapsed time plus the replayed-commit
// count and legality-proof microseconds from the recovery metrics.
func e17Recover(path string) (time.Duration, int64, int64, error) {
	s := workload.WhitePagesSchema()
	srv, err := server.New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		return 0, 0, 0, err
	}
	t0 := time.Now()
	if err := srv.OpenJournal(path); err != nil {
		return 0, 0, 0, err
	}
	elapsed := time.Since(t0)
	srv.Close()
	var replayed, legalityUs int64
	if snap, ok := srv.MetricsSnapshot().(map[string]any); ok {
		if rec, ok := snap["recovery"].(map[string]int64); ok {
			replayed = rec["journal_records_replayed"]
			legalityUs = rec["recovery_legality_us"]
		}
	}
	return elapsed, replayed, legalityUs, nil
}

func runE17() {
	sizes := []int{250, 1000, 4000}
	if *quick {
		sizes = []int{100, 400}
	}
	fmt.Println("cold-start recovery over journals of increasing length (per-commit checksummed records)")
	fmt.Println()

	res := recoveryResult{Experiment: "e17-crash-recovery", envInfo: env("whitepages")}
	run := func(n int, snapshot bool) error {
		dir, err := os.MkdirTemp("", "bsbench-e17-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		path, err := e17Build(dir, n, snapshot)
		if err != nil {
			return err
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		elapsed, replayed, legalityUs, err := e17Recover(path)
		if err != nil {
			return err
		}
		p := recoveryPoint{
			Commits:      n,
			Snapshotted:  snapshot,
			JournalBytes: st.Size(),
			RecoveryNs:   elapsed.Nanoseconds(),
			Replayed:     replayed,
			LegalityUs:   legalityUs,
		}
		if replayed > 0 {
			p.NsPerReplayed = float64(elapsed.Nanoseconds()) / float64(replayed)
		}
		res.Points = append(res.Points, p)
		kind := "journal-replay"
		if snapshot {
			kind = "snapshotted  "
		}
		per := "       (0 replayed)"
		if replayed > 0 {
			per = fmt.Sprintf("%.0f ns/replayed-commit", p.NsPerReplayed)
		}
		fmt.Printf("%7d commits  %s  journal=%-8d recovery=%-12v replayed=%-5d legality=%dµs  %s\n",
			n, kind, st.Size(), elapsed, replayed, legalityUs, per)
		return nil
	}
	for _, n := range sizes {
		if err := run(n, false); err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: e17 n=%d: %v\n", n, err)
			return
		}
	}
	// The snapshot-compacted variant of the largest size: recovery loads
	// the snapshot and replays an empty journal, so its cost no longer
	// scales with history length.
	if err := run(sizes[len(sizes)-1], true); err != nil {
		fmt.Fprintf(os.Stderr, "bsbench: e17 snapshot: %v\n", err)
		return
	}
	fmt.Println("\nshape check: trusted replay keeps ns/replayed-commit near-flat as the journal grows; snapshot compaction removes replay entirely.")

	if *checkRecoveryScaling {
		first, last := res.Points[0], res.Points[len(res.Points)-2] // last non-snapshotted point
		if first.NsPerReplayed <= 0 || last.NsPerReplayed <= 0 {
			fmt.Fprintln(os.Stderr, "bsbench: e17 scaling check: missing per-commit data")
			os.Exit(1)
		}
		ratio := last.NsPerReplayed / first.NsPerReplayed
		fmt.Printf("scaling check: %d -> %d commits: %.0f -> %.0f ns/replayed-commit (%.2fx, limit 3x)\n",
			first.Commits, last.Commits, first.NsPerReplayed, last.NsPerReplayed, ratio)
		if ratio >= 3 {
			fmt.Fprintf(os.Stderr, "bsbench: e17 FAILED scaling check: replay is superlinear again (%.2fx >= 3x)\n", ratio)
			os.Exit(1)
		}
	}

	if *jsonE17 != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonE17, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		fmt.Printf("results written to %s\n", *jsonE17)
	}
}

package main

// E17 — crash-recovery cost (internal/server/recover.go): recovery
// replays the journal through the same incremental legality checks
// that admitted the records, then proves the whole recovered instance
// legal. Each replayed record is checked against the instance grown by
// every record before it, so replay cost grows faster than linearly
// with journal length — which is the quantitative case for snapshot
// rotation, whose recovery loads the compacted instance and replays
// only the post-snapshot suffix. The experiment builds journals of
// increasing length (plus one snapshot-compacted variant), times a
// cold OpenJournal over each, and splits out the final full-instance
// legality check. Optionally records the numbers as JSON (-json-e17
// BENCH_recovery.json).

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"boundschema/internal/dirtree"
	"boundschema/internal/server"
	"boundschema/internal/txn"
	"boundschema/internal/workload"
)

type recoveryPoint struct {
	Commits      int     `json:"commits"`
	Snapshotted  bool    `json:"snapshotted"`
	JournalBytes int64   `json:"journal_bytes"`
	RecoveryNs   int64   `json:"recovery_ns"`
	LegalityMs   int64   `json:"legality_ms"`
	NsPerCommit  float64 `json:"ns_per_commit"`
}

type recoveryResult struct {
	Experiment string `json:"experiment"`
	envInfo
	Points []recoveryPoint `json:"points"`
}

// e17Build drives n sequential commits into a fresh journal under dir
// and, when snapshot is set, compacts it so recovery starts from the
// snapshot instead of a full replay.
func e17Build(dir string, n int, snapshot bool) (string, error) {
	s := workload.WhitePagesSchema()
	srv, err := server.New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "journal.ldif")
	srv.SetGroupCommit(false)
	if err := srv.OpenJournal(path); err != nil {
		return "", err
	}
	defer srv.Close()
	for i := 0; i < n; i++ {
		tx := &txn.Transaction{}
		uid := fmt.Sprintf("e17u%06d", i)
		tx.Add("uid="+uid+",ou=attLabs,o=att", []string{"person", "top"},
			map[string][]dirtree.Value{"name": {dirtree.String(uid)}})
		rep, err := srv.CommitTx(tx)
		if err != nil {
			return "", err
		}
		if !rep.Legal() {
			return "", fmt.Errorf("e17 build commit %d rejected", i)
		}
	}
	if snapshot {
		if err := srv.Rotate(); err != nil {
			return "", err
		}
	}
	return path, nil
}

// e17Recover cold-starts a server over the journal and times the full
// recovery pipeline: scan + checksum verification + replay + the final
// legality proof.
func e17Recover(path string) (time.Duration, int64, error) {
	s := workload.WhitePagesSchema()
	srv, err := server.New(s, "whitepages", workload.WhitePagesInstance(s))
	if err != nil {
		return 0, 0, err
	}
	t0 := time.Now()
	if err := srv.OpenJournal(path); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(t0)
	srv.Close()
	var legalityMs int64
	if snap, ok := srv.MetricsSnapshot().(map[string]any); ok {
		if rec, ok := snap["recovery"].(map[string]int64); ok {
			legalityMs = rec["recovery_legality_ms"]
		}
	}
	return elapsed, legalityMs, nil
}

func runE17() {
	sizes := []int{250, 1000, 4000}
	if *quick {
		sizes = []int{100, 400}
	}
	fmt.Println("cold-start recovery over journals of increasing length (per-commit checksummed records)")
	fmt.Println()

	res := recoveryResult{Experiment: "e17-crash-recovery", envInfo: env("whitepages")}
	run := func(n int, snapshot bool) error {
		dir, err := os.MkdirTemp("", "bsbench-e17-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		path, err := e17Build(dir, n, snapshot)
		if err != nil {
			return err
		}
		st, err := os.Stat(path)
		if err != nil {
			return err
		}
		elapsed, legalityMs, err := e17Recover(path)
		if err != nil {
			return err
		}
		p := recoveryPoint{
			Commits:      n,
			Snapshotted:  snapshot,
			JournalBytes: st.Size(),
			RecoveryNs:   elapsed.Nanoseconds(),
			LegalityMs:   legalityMs,
			NsPerCommit:  float64(elapsed.Nanoseconds()) / float64(n),
		}
		res.Points = append(res.Points, p)
		kind := "journal-replay"
		if snapshot {
			kind = "snapshotted  "
		}
		fmt.Printf("%7d commits  %s  journal=%-8d recovery=%-12v legality=%dms  %.0f ns/commit\n",
			n, kind, st.Size(), elapsed, legalityMs, p.NsPerCommit)
		return nil
	}
	for _, n := range sizes {
		if err := run(n, false); err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: e17 n=%d: %v\n", n, err)
			return
		}
	}
	// The snapshot-compacted variant of the largest size: recovery loads
	// the snapshot and replays an empty journal, so its cost no longer
	// scales with history length.
	if err := run(sizes[len(sizes)-1], true); err != nil {
		fmt.Fprintf(os.Stderr, "bsbench: e17 snapshot: %v\n", err)
		return
	}
	fmt.Println("\nshape check: replay cost grows superlinearly (each record is re-admitted against the instance grown by all before it); snapshot compaction makes recovery flat.")

	if *jsonE17 != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonE17, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bsbench: %v\n", err)
			return
		}
		fmt.Printf("results written to %s\n", *jsonE17)
	}
}

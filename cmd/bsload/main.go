// Bsload is the YCSB-style load driver for bsd: N concurrent workers
// run a configurable create/read/update/delete/query mix over the wire
// against a live server (or an embedded single node / primary+replica
// cluster it starts itself), with schema-respecting entries generated
// for the whitepages, netpolicy and semistructured scenarios. It
// records client-side latency histograms (p50/p95/p99/max), throughput,
// an error taxonomy (redirects, non-durable commits, read-only
// refusals, connection errors), and the server's own METRICS view.
//
// Usage:
//
//	bsload                           # embedded: every scenario × preset, single node
//	bsload -replicas 2               # embedded 1-primary/2-replica cluster
//	bsload -shards 2                 # embedded carved shards behind a router
//	bsload -scenario netpolicy -mix olap -workers 16 -entries 100000
//	bsload -addr 127.0.0.1:3890 -scenario whitepages -mix oltp
//	bsload -chaos all                # failover, disk faults, conn storms, shard crash
//	bsload -json BENCH_load.json     # write all results as JSON
//
// Mixes: oltp (c10/r90), olap (c90/r10), reporting (c5/r10/u3/d2/q80
// range-SEARCH heavy), churn (c30/r30/u15/d10/q15). Every chaos
// scenario ends with the convergence oracle: surviving nodes must be
// byte-identical where expected, pass VERIFY over the wire, and the
// final instance must be proved legal by the full (non-incremental)
// engine with all three engines in agreement.
//
// Against an external -addr the driver cannot extract DN pools from the
// corpus, so it requires the server to have been seeded by bsgen with
// the same -scenario and -entries (the pools are re-derived from a
// locally generated twin corpus, which is deterministic per seed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"boundschema/internal/loadgen"
	"boundschema/internal/repl"
	"boundschema/internal/vfs"
)

var (
	scenarioName = flag.String("scenario", "all", "whitepages, netpolicy, semistructured, or all")
	mixName      = flag.String("mix", "all", "oltp, olap, reporting, churn, or all")
	workers      = flag.Int("workers", 8, "concurrent load workers")
	ops          = flag.Int("ops", 2000, "ops per worker (ignored when -duration is set)")
	duration     = flag.Duration("duration", 0, "wall-clock bound instead of an op budget")
	entries      = flag.Int("entries", 10000, "embedded corpus size (10k-1M)")
	replicas     = flag.Int("replicas", 0, "embedded replicas behind the primary (reads fan out to them)")
	shards       = flag.Int("shards", 0, "embedded subtree shards carved from the corpus, fronted by a router (plus a default shard)")
	modeName     = flag.String("mode", "async", "embedded replication mode: async or semisync")
	seed         = flag.Int64("seed", 1, "deterministic corpus and mix seed")
	addr         = flag.String("addr", "", "drive an external server at this client address instead of an embedded one")
	readAddrs    = flag.String("read-addrs", "", "comma-separated replica client addresses for reads (external mode)")
	chaos        = flag.String("chaos", "none", "failover, fault-crash, fault-torn-write, fault-sync-error, connstorm, shardcrash, all, or none")
	jsonOut      = flag.String("json", "", "write results as JSON to this file")
	bench        = flag.Bool("bench", false, "run the canonical committed suite (BENCH_load.json): every scenario × oltp/olap/reporting on a single node, whitepages oltp on a semi-sync 1p+2r cluster, and the full chaos battery")
)

// output is the bench JSON envelope.
type output struct {
	GeneratedAt string                 `json:"generated_at"`
	CPUs        int                    `json:"cpus"`
	Gomaxprocs  int                    `json:"gomaxprocs"`
	Runs        []*loadgen.Result      `json:"runs,omitempty"`
	Chaos       []*loadgen.ChaosReport `json:"chaos,omitempty"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bsload:", err)
	os.Exit(1)
}

func scenarios() []*loadgen.Scenario {
	if *scenarioName == "all" {
		return loadgen.Scenarios()
	}
	sc, ok := loadgen.ScenarioByName(*scenarioName)
	if !ok {
		fatal(fmt.Errorf("unknown scenario %q", *scenarioName))
	}
	return []*loadgen.Scenario{sc}
}

func mixes() []loadgen.Mix {
	if *mixName == "all" {
		return loadgen.Presets()
	}
	m, ok := loadgen.PresetByName(*mixName)
	if !ok {
		fatal(fmt.Errorf("unknown mix %q", *mixName))
	}
	return []loadgen.Mix{m}
}

func main() {
	flag.Parse()
	out := &output{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		CPUs:        runtime.NumCPU(),
		Gomaxprocs:  runtime.GOMAXPROCS(0),
	}

	switch {
	case *bench:
		runBench(out)
	case *chaos != "none":
		runChaos(out)
	case *addr != "":
		runExternal(out)
	case *shards > 0:
		runSharded(out)
	default:
		runEmbedded(out)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("bsload: wrote %s\n", *jsonOut)
	}
}

// runBench runs the canonical committed suite behind BENCH_load.json:
// deterministic seeds, every scenario × the three headline presets on a
// journaled single node, the whitepages OLTP mix against a semi-sync
// 1-primary/2-replica cluster with replica reads, and the full chaos
// battery. Every phase ends in the convergence oracle.
func runBench(out *output) {
	oracle := func(cl *loadgen.Cluster) {
		if err := loadgen.Converge(cl.Nodes(), 30*time.Second); err != nil {
			cl.Close()
			fatal(err)
		}
		if err := loadgen.Oracle(cl.Schema, cl.Nodes()); err != nil {
			cl.Close()
			fatal(err)
		}
	}
	presets := []string{"oltp", "olap", "reporting"}
	for _, sc := range loadgen.Scenarios() {
		cl, err := loadgen.StartSingle(sc, *entries, *seed)
		if err != nil {
			fatal(err)
		}
		for i, name := range presets {
			mix, _ := loadgen.PresetByName(name)
			res, err := loadgen.Run(loadgen.Options{
				Scenario: sc, Pools: cl.Pools, Mix: mix,
				Workers: *workers, OpsPerWorker: *ops, Seed: *seed,
				FirstWorker:   i * 100, // disjoint worker ids per run on one live node
				CorpusEntries: cl.CorpusEntries, Cluster: "single",
			}, cl.Target())
			if err != nil {
				cl.Close()
				fatal(err)
			}
			report(res)
			out.Runs = append(out.Runs, res)
		}
		oracle(cl)
		cl.Close()
	}

	// Whitepages OLTP against a semi-sync 1p+2r cluster, reads on replicas.
	wp, _ := loadgen.ScenarioByName("whitepages")
	cl, err := loadgen.StartCluster(wp, *entries, 2, *seed, repl.SemiSync)
	if err != nil {
		fatal(err)
	}
	mix, _ := loadgen.PresetByName("oltp")
	res, err := loadgen.Run(loadgen.Options{
		Scenario: wp, Pools: cl.Pools, Mix: mix,
		Workers: *workers, OpsPerWorker: *ops, Seed: *seed,
		CorpusEntries: cl.CorpusEntries, Cluster: "1p+2r semisync",
	}, cl.Target())
	if err != nil {
		cl.Close()
		fatal(err)
	}
	report(res)
	out.Runs = append(out.Runs, res)
	oracle(cl)
	cl.Close()

	// The chaos battery, all on whitepages for comparability.
	cfg := loadgen.ChaosConfig{
		Scenario: wp, CorpusN: *entries, Workers: *workers,
		Duration: 3 * time.Second, Seed: *seed,
	}
	for _, c := range []struct {
		name string
		f    func() (*loadgen.ChaosReport, error)
	}{
		{"failover", func() (*loadgen.ChaosReport, error) { return loadgen.Failover(cfg) }},
		{"fault-crash", func() (*loadgen.ChaosReport, error) { return loadgen.FaultUnderLoad(cfg, vfs.FaultCrash) }},
		{"fault-torn-write", func() (*loadgen.ChaosReport, error) { return loadgen.FaultUnderLoad(cfg, vfs.FaultTornWrite) }},
		{"fault-sync-error", func() (*loadgen.ChaosReport, error) { return loadgen.FaultUnderLoad(cfg, vfs.FaultSyncErr) }},
		{"connstorm", func() (*loadgen.ChaosReport, error) { return loadgen.ConnStorm(cfg) }},
	} {
		rep, err := c.f()
		if err != nil {
			fatal(fmt.Errorf("chaos %s: %v", c.name, err))
		}
		fmt.Printf("chaos %-16s committed=%-6d errors=%v\n", c.name, rep.Load.Committed, rep.Load.Errors)
		out.Chaos = append(out.Chaos, rep)
	}
}

// runEmbedded starts its own node(s) per scenario and drives every
// selected mix against them.
func runEmbedded(out *output) {
	mode := repl.Async
	if *modeName == "semisync" {
		mode = repl.SemiSync
	}
	for _, sc := range scenarios() {
		cl, err := loadgen.StartCluster(sc, *entries, *replicas, *seed, mode)
		if err != nil {
			fatal(err)
		}
		cluster := "single"
		if *replicas > 0 {
			cluster = fmt.Sprintf("1p+%dr", *replicas)
		}
		for i, mix := range mixes() {
			res, err := loadgen.Run(loadgen.Options{
				Scenario: sc, Pools: cl.Pools, Mix: mix,
				Workers: *workers, OpsPerWorker: *ops, Duration: *duration,
				Seed: *seed, FirstWorker: i * 100,
				CorpusEntries: cl.CorpusEntries, Cluster: cluster,
			}, cl.Target())
			if err != nil {
				cl.Close()
				fatal(err)
			}
			report(res)
			out.Runs = append(out.Runs, res)
		}
		// Every embedded run ends with the convergence oracle.
		if err := loadgen.Converge(cl.Nodes(), 30*time.Second); err != nil {
			cl.Close()
			fatal(err)
		}
		if err := loadgen.Oracle(cl.Schema, cl.Nodes()); err != nil {
			cl.Close()
			fatal(err)
		}
		fmt.Printf("  oracle: %d node(s) byte-identical, VERIFY ok, full engine agrees\n", len(cl.Nodes()))
		cl.Close()
	}
}

// runSharded carves each scenario's corpus into -shards subtree shards
// plus a default, boots a journaled server per shard behind a router,
// and drives the selected mixes at the router as if it were one node.
// Every run ends with the sharded oracle: per-shard VERIFY, the
// router's cross-shard CHECK, and the reconstructed global instance
// proved legal with the entry accounting closed.
func runSharded(out *output) {
	for _, sc := range scenarios() {
		cl, err := loadgen.StartShardCluster(sc, *entries, *shards, *seed)
		if err != nil {
			fatal(err)
		}
		cluster := fmt.Sprintf("router+%dsh", len(cl.Shards))
		for i, mix := range mixes() {
			res, err := loadgen.Run(loadgen.Options{
				Scenario: sc, Pools: cl.Pools, Mix: mix,
				Workers: *workers, OpsPerWorker: *ops, Duration: *duration,
				Seed: *seed, FirstWorker: i * 100,
				CorpusEntries: cl.CorpusEntries, Cluster: cluster,
			}, loadgen.NewTarget(cl.Addr))
			if err != nil {
				cl.Close()
				fatal(err)
			}
			report(res)
			out.Runs = append(out.Runs, res)
		}
		if err := cl.Oracle(); err != nil {
			cl.Close()
			fatal(err)
		}
		fmt.Printf("  oracle: %d shard(s) VERIFY ok, router CHECK ok, merged instance legal\n", len(cl.Shards))
		cl.Close()
	}
}

// runExternal drives a live bsd; the DN pools are re-derived from a
// deterministic twin of the corpus the server was seeded with.
func runExternal(out *output) {
	var reads []string
	if *readAddrs != "" {
		reads = strings.Split(*readAddrs, ",")
	}
	target := loadgen.NewTarget(*addr, reads...)
	for _, sc := range scenarios() {
		schema := sc.NewSchema()
		corpus := sc.NewCorpus(schema, rand.New(rand.NewSource(*seed)), *entries)
		pools := sc.ExtractPools(corpus)
		cluster := "external"
		if len(reads) > 0 {
			cluster = fmt.Sprintf("external 1p+%dr", len(reads))
		}
		for i, mix := range mixes() {
			res, err := loadgen.Run(loadgen.Options{
				Scenario: sc, Pools: pools, Mix: mix,
				Workers: *workers, OpsPerWorker: *ops, Duration: *duration,
				Seed: *seed, FirstWorker: i * 100,
				CorpusEntries: *entries, Cluster: cluster,
			}, target)
			if err != nil {
				fatal(err)
			}
			report(res)
			out.Runs = append(out.Runs, res)
		}
	}
}

// runChaos executes the selected chaos scenario(s) embedded.
func runChaos(out *output) {
	dur := *duration
	if dur == 0 {
		dur = 3 * time.Second
	}
	want := func(name string) bool { return *chaos == "all" || *chaos == name }
	for _, sc := range scenarios() {
		cfg := loadgen.ChaosConfig{
			Scenario: sc, CorpusN: *entries, Workers: *workers,
			Duration: dur, Seed: *seed,
		}
		run := func(name string, f func() (*loadgen.ChaosReport, error)) {
			if !want(name) {
				return
			}
			rep, err := f()
			if err != nil {
				fatal(fmt.Errorf("%s/%s: %v", sc.Name, name, err))
			}
			fmt.Printf("chaos %-16s %-14s committed=%-6d errors=%v\n", name, sc.Name, rep.Load.Committed, rep.Load.Errors)
			for _, n := range rep.Notes {
				fmt.Printf("  %s\n", n)
			}
			out.Chaos = append(out.Chaos, rep)
		}
		run("failover", func() (*loadgen.ChaosReport, error) { return loadgen.Failover(cfg) })
		run("fault-crash", func() (*loadgen.ChaosReport, error) { return loadgen.FaultUnderLoad(cfg, vfs.FaultCrash) })
		run("fault-torn-write", func() (*loadgen.ChaosReport, error) { return loadgen.FaultUnderLoad(cfg, vfs.FaultTornWrite) })
		run("fault-sync-error", func() (*loadgen.ChaosReport, error) { return loadgen.FaultUnderLoad(cfg, vfs.FaultSyncErr) })
		run("connstorm", func() (*loadgen.ChaosReport, error) { return loadgen.ConnStorm(cfg) })
		run("shardcrash", func() (*loadgen.ChaosReport, error) {
			n := *shards
			if n == 0 {
				n = 2
			}
			return loadgen.ShardCrash(cfg, n)
		})
	}
}

func report(r *loadgen.Result) {
	fmt.Printf("%-14s %-10s %2d workers  %7.0f ops/s  committed=%-6d", r.Scenario, r.Mix, r.Workers, r.Throughput, r.Committed)
	if st, ok := r.PerOp["read"]; ok {
		fmt.Printf("  read p50=%dus p99=%dus", st.P50us, st.P99us)
	}
	if st, ok := r.PerOp["create"]; ok {
		fmt.Printf("  create p50=%dus p99=%dus", st.P50us, st.P99us)
	}
	if len(r.Errors) > 0 {
		fmt.Printf("  errors=%v", r.Errors)
	}
	fmt.Println()
}
